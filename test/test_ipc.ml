(* Tests for the IPC engine: unrolling with a symbolic starting state,
   single- and two-instance checks, counterexample extraction. *)

open Rtl
module Unroller = Ipc.Unroller

let bv w v = Bitvec.of_int ~width:w v

let build_counter () =
  let open Netlist.Builder in
  let b = create "counter" in
  let enable = input b "enable" 1 in
  let count = reg b "count" 8 in
  set_next b count (Expr.mux enable Expr.(count +: one 8) count);
  finalize b

(* A tiny "leaky" design: a spy register copies the secret input when
   armed. *)
let build_spy () =
  let open Netlist.Builder in
  let b = create "spy" in
  let secret = input b "secret" 4 in
  let armed = input b "armed" 1 in
  let spy = reg b "spy.value" 4 in
  let innocuous = reg b "other.value" 4 in
  set_next b spy (Expr.mux armed secret spy);
  ignore innocuous;
  finalize b

let find_count nl = (Netlist.find_reg nl "count").Netlist.rd_signal

(* ---- single-instance checks ---- *)

let test_increment_holds () =
  (* With enable held 1, count(1) = count(0) + 1 for *any* start state. *)
  let nl = build_counter () in
  let eng = Ipc.Engine.create ~two_instance:false nl in
  Ipc.Engine.ensure_frames eng 1;
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  let en = Unroller.input_vec u Unroller.A ~frame:0 (List.hd nl.Netlist.inputs) in
  Ipc.Engine.assume eng en.(0);
  let c0 = Unroller.reg_vec u Unroller.A ~frame:0 (find_count nl) in
  let c1 = Unroller.reg_vec u Unroller.A ~frame:1 (find_count nl) in
  let inc = Bitblast.Blaster.v_add g c0 (Bitblast.Blaster.const_vec (bv 8 1)) in
  let goal = Bitblast.Blaster.v_eq g c1 inc in
  (match Ipc.Engine.check eng goal with
  | Ipc.Engine.Holds -> ()
  | Ipc.Engine.Cex _ -> Alcotest.fail "increment property should hold")

let test_symbolic_start_cex () =
  (* "count(1) != 5" must fail: the symbolic start state can pick 4. *)
  let nl = build_counter () in
  let eng = Ipc.Engine.create ~two_instance:false nl in
  Ipc.Engine.ensure_frames eng 1;
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  let en = Unroller.input_vec u Unroller.A ~frame:0 (List.hd nl.Netlist.inputs) in
  Ipc.Engine.assume eng en.(0);
  let c1 = Unroller.reg_vec u Unroller.A ~frame:1 (find_count nl) in
  let goal = Aig.lit_not (Bitblast.Blaster.v_eq g c1 (Bitblast.Blaster.const_vec (bv 8 5))) in
  match Ipc.Engine.check eng goal with
  | Ipc.Engine.Holds -> Alcotest.fail "should find a counterexample"
  | Ipc.Engine.Cex cex ->
      let sv = Structural.Sreg (find_count nl) in
      let v0 = Ipc.Cex.svar_value cex Unroller.A ~frame:0 sv in
      let v1 = Ipc.Cex.svar_value cex Unroller.A ~frame:1 sv in
      Alcotest.(check int) "start state chosen as 4" 4 (Bitvec.to_int v0);
      Alcotest.(check int) "end state is 5" 5 (Bitvec.to_int v1)

let test_multi_frame_unroll () =
  (* count(3) = count(0) + 3 under enable *)
  let nl = build_counter () in
  let eng = Ipc.Engine.create ~two_instance:false nl in
  Ipc.Engine.ensure_frames eng 3;
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  for f = 0 to 2 do
    let en =
      Unroller.input_vec u Unroller.A ~frame:f (List.hd nl.Netlist.inputs)
    in
    Ipc.Engine.assume eng en.(0)
  done;
  let c0 = Unroller.reg_vec u Unroller.A ~frame:0 (find_count nl) in
  let c3 = Unroller.reg_vec u Unroller.A ~frame:3 (find_count nl) in
  let plus3 = Bitblast.Blaster.v_add g c0 (Bitblast.Blaster.const_vec (bv 8 3)) in
  (match Ipc.Engine.check eng (Bitblast.Blaster.v_eq g c3 plus3) with
  | Ipc.Engine.Holds -> ()
  | Ipc.Engine.Cex _ -> Alcotest.fail "k=3 unrolling should hold")

let test_pre_encode_incremental () =
  (* the pre-encoding keeps a high-water mark: re-encoding the same
     frames allocates no new SAT variables; new frames do *)
  let nl = build_counter () in
  let eng = Ipc.Engine.create ~two_instance:false nl in
  Ipc.Engine.ensure_frames eng 1;
  Ipc.Engine.pre_encode eng;
  let n1 = Ipc.Engine.sat_vars eng in
  Alcotest.(check bool) "some vars encoded" true (n1 > 0);
  Ipc.Engine.pre_encode eng;
  Alcotest.(check int) "repeat allocates nothing" n1 (Ipc.Engine.sat_vars eng);
  Ipc.Engine.ensure_frames eng 2;
  Ipc.Engine.pre_encode eng;
  let n2 = Ipc.Engine.sat_vars eng in
  Alcotest.(check bool) "new frame allocates" true (n2 > n1);
  Ipc.Engine.pre_encode eng;
  Alcotest.(check int) "repeat after growth allocates nothing" n2
    (Ipc.Engine.sat_vars eng)

(* ---- two-instance checks ---- *)

let secret_sig nl = List.hd nl.Netlist.inputs
let armed_sig nl = List.nth nl.Netlist.inputs 1

let test_two_safety_leak_detected () =
  let nl = build_spy () in
  let eng = Ipc.Engine.create ~two_instance:true nl in
  Ipc.Engine.ensure_frames eng 1;
  let u = Ipc.Engine.unroller eng in
  (* assume: all state equal at cycle 0; the armed input equal; the
     secret input unconstrained (may differ) *)
  Structural.Svar_set.iter
    (fun sv -> Ipc.Engine.assume eng (Unroller.svar_equal_lit u ~frame:0 sv))
    (Structural.all_svars nl);
  Ipc.Engine.assume eng (Unroller.inputs_equal_lit u ~frame:0 (armed_sig nl));
  (* prove: spy.value equal at cycle 1 — must FAIL *)
  let spy_sv = Structural.Sreg (Netlist.find_reg nl "spy.value").Netlist.rd_signal in
  match Ipc.Engine.check eng (Unroller.svar_equal_lit u ~frame:1 spy_sv) with
  | Ipc.Engine.Holds -> Alcotest.fail "leak must be detected"
  | Ipc.Engine.Cex cex ->
      let diffs = Ipc.Cex.diff_svars cex ~frame:1 in
      Alcotest.(check bool) "spy.value differs" true
        (Structural.Svar_set.mem spy_sv diffs);
      (* the cex must arm the spy and choose different secrets *)
      let armed = Ipc.Cex.input_value cex Unroller.A ~frame:0 (armed_sig nl) in
      Alcotest.(check int) "armed" 1 (Bitvec.to_int armed);
      let sa = Ipc.Cex.input_value cex Unroller.A ~frame:0 (secret_sig nl) in
      let sb = Ipc.Cex.input_value cex Unroller.B ~frame:0 (secret_sig nl) in
      Alcotest.(check bool) "secrets differ" false (Bitvec.equal sa sb)

let test_two_safety_noleak_when_disarmed () =
  let nl = build_spy () in
  let eng = Ipc.Engine.create ~two_instance:true nl in
  Ipc.Engine.ensure_frames eng 1;
  let u = Ipc.Engine.unroller eng in
  Structural.Svar_set.iter
    (fun sv -> Ipc.Engine.assume eng (Unroller.svar_equal_lit u ~frame:0 sv))
    (Structural.all_svars nl);
  (* disarm both instances *)
  let armed_a = Unroller.input_vec u Unroller.A ~frame:0 (armed_sig nl) in
  let armed_b = Unroller.input_vec u Unroller.B ~frame:0 (armed_sig nl) in
  Ipc.Engine.assume eng (Aig.lit_not armed_a.(0));
  Ipc.Engine.assume eng (Aig.lit_not armed_b.(0));
  let spy_sv = Structural.Sreg (Netlist.find_reg nl "spy.value").Netlist.rd_signal in
  match Ipc.Engine.check eng (Unroller.svar_equal_lit u ~frame:1 spy_sv) with
  | Ipc.Engine.Holds -> ()
  | Ipc.Engine.Cex _ -> Alcotest.fail "disarmed spy cannot leak"

let test_param_shared_between_instances () =
  (* A design whose register loads a param: both instances must load the
     same value, so equality holds without constraining state. *)
  let open Netlist.Builder in
  let b = create "paramtest" in
  let base = param b "layout_base" 8 in
  let r = reg b "r" 8 in
  set_next b r base;
  let nl = finalize b in
  let eng = Ipc.Engine.create ~two_instance:true nl in
  Ipc.Engine.ensure_frames eng 1;
  let u = Ipc.Engine.unroller eng in
  let r_sv = Structural.Sreg (Netlist.find_reg nl "r").Netlist.rd_signal in
  match Ipc.Engine.check eng (Unroller.svar_equal_lit u ~frame:1 r_sv) with
  | Ipc.Engine.Holds -> ()
  | Ipc.Engine.Cex _ -> Alcotest.fail "shared param must equalise instances"

let test_cex_pp_smoke () =
  let nl = build_spy () in
  let eng = Ipc.Engine.create ~two_instance:true nl in
  Ipc.Engine.ensure_frames eng 1;
  let u = Ipc.Engine.unroller eng in
  Structural.Svar_set.iter
    (fun sv -> Ipc.Engine.assume eng (Unroller.svar_equal_lit u ~frame:0 sv))
    (Structural.all_svars nl);
  let spy_sv = Structural.Sreg (Netlist.find_reg nl "spy.value").Netlist.rd_signal in
  match Ipc.Engine.check eng (Unroller.svar_equal_lit u ~frame:1 spy_sv) with
  | Ipc.Engine.Holds -> Alcotest.fail "expected cex"
  | Ipc.Engine.Cex cex ->
      let s = Format.asprintf "%a" Ipc.Cex.pp cex in
      Alcotest.(check bool) "mentions spy.value" true
        (let rec contains i =
           i + 9 <= String.length s
           && (String.sub s i 9 = "spy.value" || contains (i + 1))
         in
         contains 0)

(* qcheck: unrolled frames agree with the simulator on concrete runs *)
let qcheck_unroller_matches_sim =
  QCheck.Test.make ~count:50 ~name:"unroller transition matches simulator"
    QCheck.(pair (int_range 0 255) (list_of_size Gen.(int_range 1 4) bool))
    (fun (start, enables) ->
      let nl = build_counter () in
      let k = List.length enables in
      (* simulator run *)
      let eng_sim = Sim.Engine.create nl in
      Sim.Engine.poke_reg eng_sim "count" (bv 8 start);
      List.iter
        (fun en ->
          Sim.Engine.set_input_int eng_sim "enable" (if en then 1 else 0);
          Sim.Engine.step eng_sim)
        enables;
      let expected = Bitvec.to_int (Sim.Engine.reg_value eng_sim "count") in
      (* symbolic run pinned to the same start state and inputs *)
      let eng = Ipc.Engine.create ~two_instance:false nl in
      Ipc.Engine.ensure_frames eng k;
      let u = Ipc.Engine.unroller eng in
      let g = Ipc.Engine.graph eng in
      let c0 = Unroller.reg_vec u Unroller.A ~frame:0 (find_count nl) in
      Ipc.Engine.assume eng
        (Bitblast.Blaster.v_eq g c0 (Bitblast.Blaster.const_vec (bv 8 start)));
      List.iteri
        (fun f en ->
          let env =
            Unroller.input_vec u Unroller.A ~frame:f (List.hd nl.Netlist.inputs)
          in
          Ipc.Engine.assume eng
            (if en then env.(0) else Aig.lit_not env.(0)))
        enables;
      let ck = Unroller.reg_vec u Unroller.A ~frame:k (find_count nl) in
      let goal =
        Bitblast.Blaster.v_eq g ck (Bitblast.Blaster.const_vec (bv 8 expected))
      in
      match Ipc.Engine.check eng goal with
      | Ipc.Engine.Holds -> true
      | Ipc.Engine.Cex _ -> false)

(* qcheck: random small netlists — pin the symbolic start state and the
   inputs to concrete values; every register of every frame must then be
   forced to exactly the simulator's trajectory *)
let gen_netlist rs =
  let open Netlist.Builder in
  let b = create "rand" in
  let in0 = input b "in0" 4 in
  let in1 = input b "in1" 1 in
  let r0 = reg b "r0" 4 in
  let r1 = reg b "r1" 4 in
  let r2 = reg b "r2" 8 in
  let leaves4 = [| r0; r1; Expr.uresize r2 4; in0 |] in
  let rec gen depth w =
    if depth = 0 then
      if Random.State.bool rs then
        Expr.uresize leaves4.(Random.State.int rs 4) w
      else Expr.of_int ~width:w (Random.State.int rs (1 lsl min w 8))
    else
      let sub w = gen (depth - 1) w in
      match Random.State.int rs 8 with
      | 0 -> Expr.(sub w +: sub w)
      | 1 -> Expr.(sub w -: sub w)
      | 2 -> Expr.(sub w &: sub w)
      | 3 -> Expr.(sub w |: sub w)
      | 4 -> Expr.(sub w ^: sub w)
      | 5 -> Expr.mux (Expr.uresize in1 1) (sub w) (sub w)
      | 6 -> Expr.(uresize (sub 4 ==: sub 4) w)
      | _ -> Expr.(~:(sub w))
  in
  set_next b r0 (gen 3 4);
  set_next b r1 (gen 3 4);
  set_next b r2 (gen 3 8);
  finalize b

let qcheck_random_netlist_sim_vs_unroll =
  QCheck.Test.make ~count:40 ~name:"random netlists: unroller = simulator"
    QCheck.(int_range 0 1073741823)
    (fun seed ->
      let rs = Random.State.make [| seed |] in
      let nl = gen_netlist rs in
      let k = 3 in
      let start = [ ("r0", 4); ("r1", 4); ("r2", 8) ] in
      let start_vals =
        List.map (fun (n, w) -> (n, Random.State.int rs (1 lsl w))) start
      in
      let input_vals =
        List.init k (fun _ ->
            (Random.State.int rs 16, Random.State.int rs 2))
      in
      (* simulator trajectory *)
      let eng_sim = Sim.Engine.create nl in
      List.iter
        (fun (n, v) ->
          let w = List.assoc n start in
          Sim.Engine.poke_reg eng_sim n (bv w v))
        start_vals;
      let trajectory =
        List.map
          (fun (i0, i1) ->
            Sim.Engine.set_input_int eng_sim "in0" i0;
            Sim.Engine.set_input_int eng_sim "in1" i1;
            Sim.Engine.step eng_sim;
            List.map
              (fun (n, _) -> (n, Bitvec.to_int (Sim.Engine.reg_value eng_sim n)))
              start)
          input_vals
      in
      (* symbolic run pinned to the same start and inputs *)
      let eng = Ipc.Engine.create ~two_instance:false nl in
      Ipc.Engine.ensure_frames eng k;
      let u = Ipc.Engine.unroller eng in
      let g = Ipc.Engine.graph eng in
      let pin_reg frame n v =
        let s = (Netlist.find_reg nl n).Netlist.rd_signal in
        let vec = Unroller.reg_vec u Unroller.A ~frame s in
        Bitblast.Blaster.v_eq g vec
          (Bitblast.Blaster.const_vec (bv s.Expr.s_width v))
      in
      List.iter
        (fun (n, v) -> Ipc.Engine.assume eng (pin_reg 0 n v))
        start_vals;
      List.iteri
        (fun f (i0, i1) ->
          let sig_of name =
            List.find
              (fun (s : Expr.signal) -> s.Expr.s_name = name)
              nl.Netlist.inputs
          in
          let v0 = Unroller.input_vec u Unroller.A ~frame:f (sig_of "in0") in
          let v1 = Unroller.input_vec u Unroller.A ~frame:f (sig_of "in1") in
          Ipc.Engine.assume eng
            (Bitblast.Blaster.v_eq g v0 (Bitblast.Blaster.const_vec (bv 4 i0)));
          Ipc.Engine.assume eng
            (Bitblast.Blaster.v_eq g v1 (Bitblast.Blaster.const_vec (bv 1 i1))))
        input_vals;
      let goal =
        List.fold_left
          (fun acc (f, row) ->
            List.fold_left
              (fun acc (n, v) -> Aig.mk_and g acc (pin_reg (f + 1) n v))
              acc row)
          Aig.true_lit
          (List.mapi (fun f row -> (f, row)) trajectory)
      in
      match Ipc.Engine.check eng goal with
      | Ipc.Engine.Holds -> true
      | Ipc.Engine.Cex _ -> false)

let () =
  Alcotest.run "ipc"
    [
      ( "single-instance",
        [
          Alcotest.test_case "increment holds" `Quick test_increment_holds;
          Alcotest.test_case "symbolic start cex" `Quick test_symbolic_start_cex;
          Alcotest.test_case "multi-frame unroll" `Quick test_multi_frame_unroll;
          Alcotest.test_case "incremental pre-encoding" `Quick
            test_pre_encode_incremental;
        ] );
      ( "two-instance",
        [
          Alcotest.test_case "leak detected" `Quick test_two_safety_leak_detected;
          Alcotest.test_case "no leak when disarmed" `Quick
            test_two_safety_noleak_when_disarmed;
          Alcotest.test_case "params shared" `Quick
            test_param_shared_between_instances;
          Alcotest.test_case "cex printing" `Quick test_cex_pp_smoke;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_unroller_matches_sim; qcheck_random_netlist_sim_vs_unroll ] );
    ]
