(* Proof-farm suite: fingerprints, the on-disk store, cache
   invalidation soundness, and one end-to-end daemon round trip.

   The soundness bar (METHOD.md, "The proof farm"): a warm run may
   answer per-svar checks from cache but must reproduce the cold run's
   verdict bit-for-bit — same verdict, same witness sets, same
   iteration table. Only effort telemetry (seconds, solver/simp
   counters, certificate totals) may reflect that less work was done.
   And an RTL delta must re-solve exactly the checks whose
   {!Upec.Fingerprint.check_key} it changes — never one of the
   others. *)

open Rtl
module Cli = Upec.Cli
module F = Upec.Fingerprint
module Json = Upec.Json
module O = Upec.Options

(* A fast design point: one timer to mutate, no DMA/HWPE/UART, tiny
   memories. Cold-solves in well under a second. *)
let small =
  {
    Cli.default_design with
    Cli.d_depth = 3;
    d_dma = false;
    d_hwpe = false;
    d_uart = false;
  }

let fp d = F.make (Cli.spec_of d)

(* Per-svar check keys of a design, at S = all svars, by name. *)
let all_keys d =
  let spec = Cli.spec_of d in
  let nl = spec.Upec.Spec.soc.Soc.Builder.netlist in
  let s = Structural.all_svars nl in
  let f = F.make spec in
  Structural.Svar_set.fold
    (fun sv acc -> (Structural.svar_name sv, F.check_key f sv ~s) :: acc)
    s []

(* ---- fingerprint properties ---- *)

let gen_design =
  QCheck.Gen.(
    let* depth = int_range 2 4 in
    let* tw = int_range 2 8 in
    let* dma = bool and* hwpe = bool and* uart = bool in
    let* secure = bool in
    return
      {
        Cli.default_design with
        Cli.d_variant = (if secure then "secure" else "vulnerable");
        d_depth = depth;
        d_timer_width = tw;
        d_dma = dma;
        d_hwpe = hwpe;
        d_uart = uart;
      })

let pp_design d =
  Printf.sprintf "{%s depth=%d tw=%d dma=%b hwpe=%b uart=%b}" d.Cli.d_variant
    d.Cli.d_depth d.Cli.d_timer_width d.Cli.d_dma d.Cli.d_hwpe d.Cli.d_uart

let arb_design = QCheck.make ~print:pp_design gen_design

let qcheck_rebuild_stable =
  QCheck.Test.make ~count:10 ~name:"identical builds fingerprint equal"
    arb_design (fun d ->
      (* two independent builds: signal ids and build order differ,
         content does not *)
      F.design (fp d) = F.design (fp d))

let qcheck_gate_change_differs =
  QCheck.Test.make ~count:10 ~name:"any gate change fingerprints differently"
    arb_design (fun d ->
      let d' =
        {
          d with
          Cli.d_timer_width =
            (if d.Cli.d_timer_width >= 8 then 7 else d.Cli.d_timer_width + 1);
        }
      in
      F.design (fp d) <> F.design (fp d'))

let test_variant_in_fingerprint () =
  Alcotest.(check bool)
    "vulnerable vs secure differ" true
    (F.design (fp small)
    <> F.design (fp { small with Cli.d_variant = "secure" }))

(* ---- check-key selectivity ---- *)

(* The validated delta: shrinking the timer counter 8 -> 7 bits on the
   full default design changes the next-state content of exactly
   [timer.value] and — because the DMA's data register muxes the read
   bus the timer drives — [dma.data_q]. Every other check key must
   survive, or the farm would re-solve the whole design on every
   one-line RTL edit. *)
let test_delta_cone () =
  let k8 = all_keys Cli.default_design in
  let k7 = all_keys { Cli.default_design with Cli.d_timer_width = 7 } in
  Alcotest.(check int) "same svar set" (List.length k8) (List.length k7);
  let changed =
    List.filter_map
      (fun (n, k) ->
        match List.assoc_opt n k7 with
        | Some k' when k' <> k -> Some n
        | _ -> None)
      k8
  in
  Alcotest.(check (list string))
    "changed keys = the timer cone"
    [ "dma.data_q"; "timer.value" ]
    (List.sort compare changed);
  Alcotest.(check bool)
    "most keys survive" true
    (List.length k8 - List.length changed > List.length changed)

(* ---- the on-disk store ---- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir name =
  rm_rf name;
  name

let test_store_roundtrip () =
  let dir = fresh_dir "farm-store-roundtrip" in
  let s = Farm.Store.load ~dir in
  Farm.Store.add_lemma s ~svar:"timer.value" ~key:"k1" ~holds:true;
  Farm.Store.add_lemma s ~svar:"dma.data_q" ~key:"k2" ~holds:false;
  Farm.Store.add_lemma s ~svar:"odd name []" ~key:"k3" ~holds:true;
  Farm.Store.add_report s ~key:"r1" (Json.Obj [ ("verdict", Json.Str "ok") ]);
  Farm.Store.save s;
  let s' = Farm.Store.load ~dir in
  Alcotest.(check (pair int int)) "counts" (3, 1) (Farm.Store.counts s');
  Alcotest.(check (option bool))
    "lemma verdict" (Some true)
    (Farm.Store.lemma s' ~svar:"timer.value" ~key:"k1");
  Alcotest.(check (option bool))
    "refuted lemma" (Some false)
    (Farm.Store.lemma s' ~svar:"dma.data_q" ~key:"k2");
  Alcotest.(check (option bool))
    "escaped svar name" (Some true)
    (Farm.Store.lemma s' ~svar:"odd name []" ~key:"k3");
  Alcotest.(check (option bool))
    "stale key misses" None
    (Farm.Store.lemma s' ~svar:"timer.value" ~key:"other");
  Alcotest.(check bool)
    "has_svar sees any key" true
    (Farm.Store.has_svar s' ~svar:"timer.value");
  Alcotest.(check bool)
    "has_svar miss" false
    (Farm.Store.has_svar s' ~svar:"nope");
  match Farm.Store.report s' ~key:"r1" with
  | Some (Json.Obj [ ("verdict", Json.Str "ok") ]) -> ()
  | _ -> Alcotest.fail "report did not round-trip"

let test_store_gc () =
  let dir = fresh_dir "farm-store-gc" in
  let s = Farm.Store.load ~dir in
  for i = 1 to 6 do
    Farm.Store.add_lemma s
      ~svar:(Printf.sprintf "sv%d" i)
      ~key:"k" ~holds:true
  done;
  Farm.Store.add_report s ~key:"r1" (Json.Obj []);
  Farm.Store.add_report s ~key:"r2" (Json.Obj []);
  (* touch the oldest lemma so LRU keeps it over sv2..sv4 *)
  ignore (Farm.Store.lemma s ~svar:"sv1" ~key:"k");
  ignore (Farm.Store.report s ~key:"r1");
  let evl, evr = Farm.Store.gc s ~max_lemmas:2 ~max_reports:1 in
  Alcotest.(check (pair int int)) "evicted" (4, 1) (evl, evr);
  Alcotest.(check (pair int int)) "kept" (2, 1) (Farm.Store.counts s);
  Alcotest.(check (option bool))
    "recently used survives" (Some true)
    (Farm.Store.lemma s ~svar:"sv1" ~key:"k");
  Alcotest.(check (option bool))
    "oldest evicted" None
    (Farm.Store.lemma s ~svar:"sv2" ~key:"k");
  Alcotest.(check bool)
    "evicted report file unlinked" false
    (Sys.file_exists (Filename.concat dir "reports/r2.json"));
  Farm.Store.save s;
  Alcotest.(check (pair int int))
    "gc survives reload" (2, 1)
    (Farm.Store.counts (Farm.Store.load ~dir))

let test_store_damage () =
  let dir = fresh_dir "farm-store-damage" in
  let s = Farm.Store.load ~dir in
  Farm.Store.add_lemma s ~svar:"a" ~key:"k" ~holds:true;
  Farm.Store.add_report s ~key:"r" (Json.Obj []);
  Farm.Store.save s;
  (* index corrupted -> empty cache, no exception *)
  let oc = open_out (Filename.concat dir "index") in
  output_string oc "upec-farm-cache 999\ngarbage here\n";
  close_out oc;
  Alcotest.(check (pair int int))
    "corrupt index loads empty" (0, 0)
    (Farm.Store.counts (Farm.Store.load ~dir));
  (* indexed report whose file vanished -> pruned, not crashed *)
  let s = Farm.Store.load ~dir in
  Farm.Store.add_report s ~key:"gone" (Json.Obj []);
  Farm.Store.save s;
  Unix.unlink (Filename.concat dir "reports/gone.json");
  let s' = Farm.Store.load ~dir in
  Alcotest.(check (pair int int)) "pruned" (0, 0) (Farm.Store.counts s')

(* ---- cache invalidation soundness (in process) ---- *)

let job ?(id = "t") ?(certify = false) d =
  {
    Farm.Job.jb_id = id;
    jb_design = d;
    jb_alg = 1;
    jb_options = { O.default with O.jobs = Some 1; certify };
  }

(* Everything semantic must be byte-equal between warm and cold; strip
   only effort telemetry: seconds, solver/simp counters, certificate
   totals (cached checks don't re-certify) and the cache block itself. *)
let strip_effort json =
  let rec strip drop j =
    match j with
    | Json.Obj members ->
        Json.Obj
          (List.filter_map
             (fun (n, v) ->
               if List.mem n drop then None
               else if n = "steps" then Some (n, strip_steps v)
               else Some (n, strip drop v))
             members)
    | Json.List items -> Json.List (List.map (strip drop) items)
    | j -> j
  and strip_steps = function
    | Json.List steps -> Json.List (List.map (strip [ "seconds" ]) steps)
    | j -> j
  in
  strip [ "total_seconds"; "simp"; "cache"; "cert" ] json

let semantic json = Json.to_string_compact (strip_effort json)

let merge_outcome store (oc : Farm.Exec.outcome) =
  List.iter
    (fun (svar, key, holds) -> Farm.Store.add_lemma store ~svar ~key ~holds)
    oc.Farm.Exec.oc_new_lemmas;
  if not oc.Farm.Exec.oc_report_hit then
    Farm.Store.add_report store ~key:oc.Farm.Exec.oc_report_key
      oc.Farm.Exec.oc_report;
  Farm.Store.save store

let test_invalidation_soundness () =
  let small7 = { small with Cli.d_timer_width = 7 } in
  let store = Farm.Store.load ~dir:(fresh_dir "farm-inval-warm") in
  let cold8 = Farm.Exec.run ~store (job small) in
  Alcotest.(check bool) "cold run is a miss" false cold8.Farm.Exec.oc_report_hit;
  merge_outcome store cold8;
  (* the delta: 8 -> 7 bit timer. Warm run against the tw=8 cache. *)
  let warm7 = Farm.Exec.run ~store (job small7) in
  let cold7 =
    Farm.Exec.run ~store:(Farm.Store.load ~dir:(fresh_dir "farm-inval-cold"))
      (job small7)
  in
  Alcotest.(check bool) "warm is not a report hit" false
    warm7.Farm.Exec.oc_report_hit;
  Alcotest.(check bool) "warm served from lemma cache" true
    (warm7.Farm.Exec.oc_lemma_hits > 0);
  Alcotest.(check bool) "warm re-solved the cone" true
    (warm7.Farm.Exec.oc_lemma_misses > 0);
  Alcotest.(check int) "every miss is an invalidation (no new svars)"
    warm7.Farm.Exec.oc_lemma_misses warm7.Farm.Exec.oc_invalidated;
  Alcotest.(check string) "warm verdict bit-identical to cold"
    (semantic cold7.Farm.Exec.oc_report)
    (semantic warm7.Farm.Exec.oc_report);
  (* re-solved exactly the key-changed cone: no changed-key svar may
     be served from cache, and cold8's lemmas for unchanged keys are
     what the warm run consumed *)
  let changed =
    let k8 = all_keys small and k7 = all_keys small7 in
    List.filter_map
      (fun (n, k) ->
        match List.assoc_opt n k7 with
        | Some k' when k' <> k -> Some n
        | _ -> None)
      k8
  in
  Alcotest.(check bool) "delta has a non-empty cone" true (changed <> []);
  let cached_names =
    match
      Json.member "cache" warm7.Farm.Exec.oc_report |> Json.member "cached_svars"
    with
    | Json.List l ->
        List.filter_map
          (fun e ->
            match Json.member "name" e with Json.Str s -> Some s | _ -> None)
          l
    | _ -> []
  in
  Alcotest.(check bool) "warm run cached something" true (cached_names <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " (changed key) must re-solve, not hit")
        false (List.mem n cached_names))
    changed;
  (* resubmission of the warm job is now a report-level hit *)
  merge_outcome store warm7;
  let again = Farm.Exec.run ~store (job small7) in
  Alcotest.(check bool) "resubmission hits" true again.Farm.Exec.oc_report_hit;
  Alcotest.(check string) "served artefact identical"
    (semantic warm7.Farm.Exec.oc_report)
    (semantic again.Farm.Exec.oc_report)

let test_certified_warm () =
  let small7 = { small with Cli.d_timer_width = 7 } in
  let store = Farm.Store.load ~dir:(fresh_dir "farm-cert-warm") in
  merge_outcome store (Farm.Exec.run ~store (job ~certify:true small));
  let warm = Farm.Exec.run ~store (job ~certify:true small7) in
  let cold =
    Farm.Exec.run ~store:(Farm.Store.load ~dir:(fresh_dir "farm-cert-cold"))
      (job ~certify:true small7)
  in
  Alcotest.(check bool) "warm certified run used the cache" true
    (warm.Farm.Exec.oc_lemma_hits > 0);
  Alcotest.(check string) "certified verdict bit-identical"
    (semantic cold.Farm.Exec.oc_report)
    (semantic warm.Farm.Exec.oc_report);
  (* the fresh cone solves are still certified *)
  match Json.member "cert" cold.Farm.Exec.oc_report with
  | Json.Null -> Alcotest.fail "cold certified run carries no cert block"
  | _ -> ()

(* ---- options key separates strategies ---- *)

let test_options_key () =
  let j1 = job small and j2 = job { small with Cli.d_depth = 4 } in
  Alcotest.(check string) "options key ignores the design"
    (Farm.Job.options_key j1) (Farm.Job.options_key j2);
  let j3 = { j1 with Farm.Job.jb_alg = 2 } in
  Alcotest.(check bool) "algorithm is part of the key" true
    (Farm.Job.options_key j1 <> Farm.Job.options_key j3);
  let j4 =
    { j1 with Farm.Job.jb_options = { j1.Farm.Job.jb_options with O.jobs = Some 2 } }
  in
  Alcotest.(check bool) "job count is part of the key" true
    (Farm.Job.options_key j1 <> Farm.Job.options_key j4);
  Alcotest.(check bool) "report keys differ across designs" true
    (Farm.Exec.report_key j1 <> Farm.Exec.report_key j2)

(* ---- end to end: the daemon over its socket ---- *)

let farm_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/upec_farm.exe"

let test_daemon_roundtrip () =
  let dir = fresh_dir "farm-e2e" in
  Unix.mkdir dir 0o755;
  let socket = Filename.concat dir "farm.sock" in
  let cache = Filename.concat dir "cache" in
  let pid =
    Unix.create_process farm_exe
      [|
        farm_exe; "serve"; "--socket"; socket; "--cache"; cache;
        "--workers"; "1";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      let rec wait_sock n =
        if Sys.file_exists socket then ()
        else if n = 0 then Alcotest.fail "daemon never bound its socket"
        else begin
          Unix.sleepf 0.05;
          wait_sock (n - 1)
        end
      in
      wait_sock 200;
      let submit () =
        Farm.Client.request ~socket
          (Json.Obj
             [
               ("op", Json.Str "submit");
               ("job", Farm.Job.to_json (job ~id:"e2e" small));
             ])
      in
      let r1 = submit () in
      Alcotest.(check (option bool))
        "first submit ok" (Some true)
        (Json.to_bool (Json.member "ok" r1));
      Alcotest.(check (option bool))
        "first submit solves" (Some false)
        (Json.to_bool (Json.member "cached" r1));
      let r2 = submit () in
      Alcotest.(check (option bool))
        "resubmission served from cache" (Some true)
        (Json.to_bool (Json.member "cached" r2));
      Alcotest.(check string) "served verdict identical"
        (semantic (Json.member "report" r1))
        (semantic (Json.member "report" r2));
      let st =
        Farm.Client.request ~socket (Json.Obj [ ("op", Json.Str "status") ])
      in
      Alcotest.(check (option bool))
        "status ok" (Some true)
        (Json.to_bool (Json.member "ok" st));
      let bye =
        Farm.Client.request ~socket (Json.Obj [ ("op", Json.Str "shutdown") ])
      in
      Alcotest.(check (option bool))
        "shutdown acknowledged" (Some true)
        (Json.to_bool (Json.member "ok" bye));
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool)
        "daemon exited cleanly" true
        (status = Unix.WEXITED 0))

let () =
  Alcotest.run "farm"
    [
      ( "fingerprint",
        [
          QCheck_alcotest.to_alcotest qcheck_rebuild_stable;
          QCheck_alcotest.to_alcotest qcheck_gate_change_differs;
          Alcotest.test_case "variant in fingerprint" `Quick
            test_variant_in_fingerprint;
          Alcotest.test_case "delta changes exactly its cone" `Quick
            test_delta_cone;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "lru gc" `Quick test_store_gc;
          Alcotest.test_case "damage tolerance" `Quick test_store_damage;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "warm bit-identical, cone re-solved" `Quick
            test_invalidation_soundness;
          Alcotest.test_case "certified warm run" `Quick test_certified_warm;
          Alcotest.test_case "options key" `Quick test_options_key;
        ] );
      ( "daemon",
        [ Alcotest.test_case "socket roundtrip" `Quick test_daemon_roundtrip ] );
    ]
