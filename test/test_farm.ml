(* Proof-farm suite: fingerprints, the on-disk store, cache
   invalidation soundness, and one end-to-end daemon round trip.

   The soundness bar (METHOD.md, "The proof farm"): a warm run may
   answer per-svar checks from cache but must reproduce the cold run's
   verdict bit-for-bit — same verdict, same witness sets, same
   iteration table. Only effort telemetry (seconds, solver/simp
   counters, certificate totals) may reflect that less work was done.
   And an RTL delta must re-solve exactly the checks whose
   {!Upec.Fingerprint.check_key} it changes — never one of the
   others. *)

open Rtl
module Cli = Upec.Cli
module F = Upec.Fingerprint
module Json = Upec.Json
module O = Upec.Options

(* A fast design point: one timer to mutate, no DMA/HWPE/UART, tiny
   memories. Cold-solves in well under a second. *)
let small =
  {
    Cli.default_design with
    Cli.d_depth = 3;
    d_dma = false;
    d_hwpe = false;
    d_uart = false;
  }

let fp d = F.make (Cli.spec_of d)

(* Per-svar check keys of a design, at S = all svars, by name. *)
let all_keys d =
  let spec = Cli.spec_of d in
  let nl = spec.Upec.Spec.soc.Soc.Builder.netlist in
  let s = Structural.all_svars nl in
  let f = F.make spec in
  Structural.Svar_set.fold
    (fun sv acc -> (Structural.svar_name sv, F.check_key f sv ~s) :: acc)
    s []

(* ---- fingerprint properties ---- *)

let gen_design =
  QCheck.Gen.(
    let* depth = int_range 2 4 in
    let* tw = int_range 2 8 in
    let* dma = bool and* hwpe = bool and* uart = bool in
    let* secure = bool in
    return
      {
        Cli.default_design with
        Cli.d_variant = (if secure then "secure" else "vulnerable");
        d_depth = depth;
        d_timer_width = tw;
        d_dma = dma;
        d_hwpe = hwpe;
        d_uart = uart;
      })

let pp_design d =
  Printf.sprintf "{%s depth=%d tw=%d dma=%b hwpe=%b uart=%b}" d.Cli.d_variant
    d.Cli.d_depth d.Cli.d_timer_width d.Cli.d_dma d.Cli.d_hwpe d.Cli.d_uart

let arb_design = QCheck.make ~print:pp_design gen_design

let qcheck_rebuild_stable =
  QCheck.Test.make ~count:10 ~name:"identical builds fingerprint equal"
    arb_design (fun d ->
      (* two independent builds: signal ids and build order differ,
         content does not *)
      F.design (fp d) = F.design (fp d))

let qcheck_gate_change_differs =
  QCheck.Test.make ~count:10 ~name:"any gate change fingerprints differently"
    arb_design (fun d ->
      let d' =
        {
          d with
          Cli.d_timer_width =
            (if d.Cli.d_timer_width >= 8 then 7 else d.Cli.d_timer_width + 1);
        }
      in
      F.design (fp d) <> F.design (fp d'))

let test_variant_in_fingerprint () =
  Alcotest.(check bool)
    "vulnerable vs secure differ" true
    (F.design (fp small)
    <> F.design (fp { small with Cli.d_variant = "secure" }))

(* ---- check-key selectivity ---- *)

(* The validated delta: shrinking the timer counter 8 -> 7 bits on the
   full default design changes the next-state content of exactly
   [timer.value] and — because the DMA's data register muxes the read
   bus the timer drives — [dma.data_q]. Every other check key must
   survive, or the farm would re-solve the whole design on every
   one-line RTL edit. *)
let test_delta_cone () =
  let k8 = all_keys Cli.default_design in
  let k7 = all_keys { Cli.default_design with Cli.d_timer_width = 7 } in
  Alcotest.(check int) "same svar set" (List.length k8) (List.length k7);
  let changed =
    List.filter_map
      (fun (n, k) ->
        match List.assoc_opt n k7 with
        | Some k' when k' <> k -> Some n
        | _ -> None)
      k8
  in
  Alcotest.(check (list string))
    "changed keys = the timer cone"
    [ "dma.data_q"; "timer.value" ]
    (List.sort compare changed);
  Alcotest.(check bool)
    "most keys survive" true
    (List.length k8 - List.length changed > List.length changed)

(* ---- the on-disk store ---- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir name =
  rm_rf name;
  name

let load dir = Farm.Store.load ~dir ()
let loadw dir = Farm.Store.load ~writer:true ~dir ()

(* Flip chaos directives for the duration of [f] only; the daemon
   helpers below strip these variables before spawning, so a directive
   set here fires in this process (the client / the in-process store),
   never in a daemon under test. *)
let with_chaos spec f =
  Unix.putenv "UPEC_FARM_CHAOS" spec;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "UPEC_FARM_CHAOS" "";
      Unix.putenv "UPEC_FARM_CHAOS_DIR" "")
    f

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ---- wire: addresses, framing, auth primitives ---- *)

let test_addr_parsing () =
  let check_addr msg expect got =
    Alcotest.(check bool) msg true (got = expect)
  in
  check_addr "host:port is tcp"
    (Farm.Wire.Tcp ("farm.example", 9731))
    (Farm.Wire.addr_of_string "farm.example:9731");
  check_addr "bare port binds loopback"
    (Farm.Wire.Tcp ("127.0.0.1", 9731))
    (Farm.Wire.addr_of_string ":9731");
  check_addr "a path stays a unix socket"
    (Farm.Wire.Unix_path "/tmp/farm.sock")
    (Farm.Wire.addr_of_string "/tmp/farm.sock");
  check_addr "non-numeric port stays a unix socket"
    (Farm.Wire.Unix_path "odd:name")
    (Farm.Wire.addr_of_string "odd:name");
  check_addr "port 0 is not a tcp address"
    (Farm.Wire.Unix_path "host:0")
    (Farm.Wire.addr_of_string "host:0")

let test_framing () =
  let buf = Buffer.create 64 in
  let msg = {|{"op":"ping"}|} in
  let f = Farm.Wire.frame msg in
  (* byte-at-a-time arrival: nothing pops until the last byte *)
  String.iteri
    (fun i c ->
      Buffer.add_char buf c;
      if i < String.length f - 1 then
        Alcotest.(check (option string))
          "incomplete frame pops nothing" None
          (Farm.Wire.pop_frame buf))
    f;
  Alcotest.(check (option string))
    "complete frame pops" (Some msg)
    (Farm.Wire.pop_frame buf);
  Alcotest.(check int) "buffer drained" 0 (Buffer.length buf);
  (* two frames back to back, plus a partial tail *)
  Buffer.add_string buf (f ^ Farm.Wire.frame "x" ^ "0000");
  Alcotest.(check (option string)) "first" (Some msg) (Farm.Wire.pop_frame buf);
  Alcotest.(check (option string)) "second" (Some "x") (Farm.Wire.pop_frame buf);
  Alcotest.(check (option string)) "tail stays" None (Farm.Wire.pop_frame buf);
  Alcotest.(check int) "tail intact" 4 (Buffer.length buf);
  (* framing damage is loud, never a silent short message *)
  Buffer.clear buf;
  Buffer.add_string buf "garbage!\n";
  match Farm.Wire.pop_frame buf with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed frame header must raise"

let test_auth_primitives () =
  let mac = Farm.Wire.hmac ~key:"secret" "msg" in
  Alcotest.(check string) "hmac is deterministic" mac
    (Farm.Wire.hmac ~key:"secret" "msg");
  Alcotest.(check bool) "the key separates" true
    (mac <> Farm.Wire.hmac ~key:"other" "msg");
  Alcotest.(check bool) "the message separates" true
    (mac <> Farm.Wire.hmac ~key:"secret" "msg2");
  Alcotest.(check bool) "over-long keys are hashed, not truncated" true
    (Farm.Wire.hmac ~key:(String.make 100 'k') "m"
    <> Farm.Wire.hmac ~key:(String.make 100 'k' ^ "x") "m");
  Alcotest.(check bool) "ct-eq accepts" true
    (Farm.Wire.constant_time_eq mac mac);
  Alcotest.(check bool) "ct-eq refuses" false
    (Farm.Wire.constant_time_eq mac (Farm.Wire.hmac ~key:"other" "msg"));
  Alcotest.(check bool) "nonces do not repeat" true
    (Farm.Wire.fresh_nonce () <> Farm.Wire.fresh_nonce ());
  let nonce = Farm.Wire.fresh_nonce () in
  Alcotest.(check bool) "a well-formed response verifies" true
    (Farm.Wire.auth_check ~token:"tok" ~nonce
       (Farm.Wire.auth_response ~token:"tok" ~nonce));
  Alcotest.(check bool) "a wrong token is refused" false
    (Farm.Wire.auth_check ~token:"tok" ~nonce
       (Farm.Wire.auth_response ~token:"bad" ~nonce));
  Alcotest.(check bool) "a replayed response is refused" false
    (Farm.Wire.auth_check ~token:"tok" ~nonce:(Farm.Wire.fresh_nonce ())
       (Farm.Wire.auth_response ~token:"tok" ~nonce))

(* ---- chaos harness bookkeeping ---- *)

let test_chaos_budgets () =
  with_chaos "test_fault:2,other" (fun () ->
      Alcotest.(check bool) "active" true (Farm.Chaos.active ());
      Alcotest.(check bool) "armed" true (Farm.Chaos.armed "test_fault");
      Alcotest.(check bool) "unlisted not armed" false (Farm.Chaos.armed "no");
      Alcotest.(check bool) "unlisted never fires" false (Farm.Chaos.fire "no");
      let f1 = Farm.Chaos.fire "test_fault" in
      let f2 = Farm.Chaos.fire "test_fault" in
      let f3 = Farm.Chaos.fire "test_fault" in
      Alcotest.(check (list bool))
        "a budget of two fires twice" [ true; true; false ] [ f1; f2; f3 ];
      Alcotest.(check bool) "default count is one" true (Farm.Chaos.fire "other");
      Alcotest.(check bool) "and then dry" false (Farm.Chaos.fire "other"));
  Alcotest.(check bool) "inactive when unset" false (Farm.Chaos.active ());
  (* shared budgets live in lockf'd counter files: the allowance is
     global across the daemon, its workers and their respawns *)
  let dir = fresh_dir "farm-chaos-dir" in
  let bindings = Farm.Chaos.arm_dir ~dir [ ("test_fault", 1) ] in
  Alcotest.(check bool) "arm_dir names the spec" true
    (List.mem_assoc "UPEC_FARM_CHAOS" bindings
    && List.mem_assoc "UPEC_FARM_CHAOS_DIR" bindings);
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "UPEC_FARM_CHAOS" "";
      Unix.putenv "UPEC_FARM_CHAOS_DIR" "")
    (fun () ->
      Alcotest.(check bool) "shared budget fires once" true
        (Farm.Chaos.fire "test_fault");
      Alcotest.(check bool) "then globally dry" false
        (Farm.Chaos.fire "test_fault"))

let test_store_roundtrip () =
  let dir = fresh_dir "farm-store-roundtrip" in
  let s = load dir in
  Farm.Store.add_lemma s ~svar:"timer.value" ~key:"k1" ~holds:true;
  Farm.Store.add_lemma s ~svar:"dma.data_q" ~key:"k2" ~holds:false;
  Farm.Store.add_lemma s ~svar:"odd name []" ~key:"k3" ~holds:true;
  Farm.Store.add_report s ~key:"r1"
    (Json.Obj [ ("schema", Json.Int 2); ("verdict", Json.Str "ok") ]);
  Farm.Store.save s;
  let s' = load dir in
  Alcotest.(check (pair int int)) "counts" (3, 1) (Farm.Store.counts s');
  Alcotest.(check (option bool))
    "lemma verdict" (Some true)
    (Farm.Store.lemma s' ~svar:"timer.value" ~key:"k1");
  Alcotest.(check (option bool))
    "refuted lemma" (Some false)
    (Farm.Store.lemma s' ~svar:"dma.data_q" ~key:"k2");
  Alcotest.(check (option bool))
    "escaped svar name" (Some true)
    (Farm.Store.lemma s' ~svar:"odd name []" ~key:"k3");
  Alcotest.(check (option bool))
    "stale key misses" None
    (Farm.Store.lemma s' ~svar:"timer.value" ~key:"other");
  Alcotest.(check bool)
    "has_svar sees any key" true
    (Farm.Store.has_svar s' ~svar:"timer.value");
  Alcotest.(check bool)
    "has_svar miss" false
    (Farm.Store.has_svar s' ~svar:"nope");
  match Farm.Store.report s' ~key:"r1" with
  | Some (Json.Obj [ ("schema", Json.Int 2); ("verdict", Json.Str "ok") ]) -> ()
  | _ -> Alcotest.fail "report did not round-trip"

let test_store_gc () =
  let dir = fresh_dir "farm-store-gc" in
  let s = load dir in
  for i = 1 to 6 do
    Farm.Store.add_lemma s
      ~svar:(Printf.sprintf "sv%d" i)
      ~key:"k" ~holds:true
  done;
  Farm.Store.add_report s ~key:"r1" (Json.Obj [ ("schema", Json.Int 3) ]);
  Farm.Store.add_report s ~key:"r2" (Json.Obj [ ("schema", Json.Int 3) ]);
  (* touch the oldest lemma so LRU keeps it over sv2..sv4 *)
  ignore (Farm.Store.lemma s ~svar:"sv1" ~key:"k");
  ignore (Farm.Store.report s ~key:"r1");
  let evl, evr = Farm.Store.gc s ~max_lemmas:2 ~max_reports:1 in
  Alcotest.(check (pair int int)) "evicted" (4, 1) (evl, evr);
  Alcotest.(check (pair int int)) "kept" (2, 1) (Farm.Store.counts s);
  Alcotest.(check (option bool))
    "recently used survives" (Some true)
    (Farm.Store.lemma s ~svar:"sv1" ~key:"k");
  Alcotest.(check (option bool))
    "oldest evicted" None
    (Farm.Store.lemma s ~svar:"sv2" ~key:"k");
  Alcotest.(check bool)
    "evicted report file unlinked" false
    (Sys.file_exists (Filename.concat dir "reports/r2.json"));
  Farm.Store.save s;
  Alcotest.(check (pair int int))
    "gc survives reload" (2, 1)
    (Farm.Store.counts (load dir))

let test_store_damage () =
  let dir = fresh_dir "farm-store-damage" in
  let s = load dir in
  Farm.Store.add_lemma s ~svar:"a" ~key:"k" ~holds:true;
  Farm.Store.add_report s ~key:"r" (Json.Obj []);
  Farm.Store.save s;
  (* index corrupted -> empty cache, no exception *)
  let oc = open_out (Filename.concat dir "index") in
  output_string oc "upec-farm-cache 999\ngarbage here\n";
  close_out oc;
  Alcotest.(check (pair int int))
    "corrupt index loads empty" (0, 0)
    (Farm.Store.counts (load dir));
  (* indexed report whose file vanished -> pruned, not crashed *)
  let s = load dir in
  Farm.Store.add_report s ~key:"gone" (Json.Obj []);
  Farm.Store.save s;
  Unix.unlink (Filename.concat dir "reports/gone.json");
  let s' = load dir in
  Alcotest.(check (pair int int)) "pruned" (0, 0) (Farm.Store.counts s')

(* A damaged artefact is never trusted, never silently dropped: the
   writer (the daemon) moves it into quarantine/ and forgets the key;
   a reader (a worker snapshot) only counts and misses — the files
   belong to the daemon. *)
let test_store_quarantine () =
  let dir = fresh_dir "farm-store-quarantine" in
  let s = loadw dir in
  Farm.Store.add_report s ~key:"r" (Json.Obj [ ("verdict", Json.Str "ok") ]);
  Farm.Store.save s;
  let path = Filename.concat dir "reports/r.json" in
  let oc = open_out path in
  output_string oc "{\"verdict\":";
  close_out oc;
  Alcotest.(check bool)
    "damaged report not trusted" true
    (Farm.Store.report s ~key:"r" = None);
  Alcotest.(check int) "counted" 1 (Farm.Store.quarantined s);
  Alcotest.(check bool)
    "moved out of the cache namespace" false (Sys.file_exists path);
  Alcotest.(check bool)
    "kept for forensics" true
    (Sys.file_exists (Filename.concat dir "quarantine/r.json"));
  Alcotest.(check int) "index entry dropped" 0 (snd (Farm.Store.counts s));
  (* the reader side: count, miss, leave the file where it is *)
  let s2 = loadw dir in
  Farm.Store.add_report s2 ~key:"r2" (Json.Obj []);
  Farm.Store.save s2;
  let p2 = Filename.concat dir "reports/r2.json" in
  let oc = open_out p2 in
  output_string oc "garbage";
  close_out oc;
  let rd = load dir in
  Alcotest.(check bool)
    "reader misses" true
    (Farm.Store.report rd ~key:"r2" = None);
  Alcotest.(check int) "reader counted" 1 (Farm.Store.quarantined rd);
  Alcotest.(check bool) "reader left the file in place" true
    (Sys.file_exists p2)

let test_store_corrupt_index_quarantined () =
  let dir = fresh_dir "farm-store-qidx" in
  let s = loadw dir in
  Farm.Store.add_lemma s ~svar:"a" ~key:"k" ~holds:true;
  Farm.Store.save s;
  let oc = open_out (Filename.concat dir "index") in
  output_string oc "upec-farm-cache 999\ngarbage\n";
  close_out oc;
  let s' = loadw dir in
  Alcotest.(check (pair int int))
    "empty after damage" (0, 0)
    (Farm.Store.counts s');
  Alcotest.(check int) "counted" 1 (Farm.Store.quarantined s');
  Alcotest.(check bool) "broken index set aside" true
    (Sys.file_exists (Filename.concat dir "quarantine/index"))

(* ---- cache invalidation soundness (in process) ---- *)

let job ?(id = "t") ?(certify = false) d =
  {
    Farm.Job.jb_id = id;
    jb_design = d;
    jb_alg = 1;
    jb_options = { O.default with O.jobs = Some 1; certify };
  }

(* Everything semantic must be byte-equal between warm and cold; strip
   only effort telemetry: seconds, solver/simp counters, certificate
   totals (cached checks don't re-certify) and the cache block itself. *)
let strip_effort json =
  let rec strip drop j =
    match j with
    | Json.Obj members ->
        Json.Obj
          (List.filter_map
             (fun (n, v) ->
               if List.mem n drop then None
               else if n = "steps" then Some (n, strip_steps v)
               else Some (n, strip drop v))
             members)
    | Json.List items -> Json.List (List.map (strip drop) items)
    | j -> j
  and strip_steps = function
    | Json.List steps -> Json.List (List.map (strip [ "seconds" ]) steps)
    | j -> j
  in
  strip [ "total_seconds"; "simp"; "cache"; "cert" ] json

let semantic json = Json.to_string_compact (strip_effort json)

let merge_outcome store (oc : Farm.Exec.outcome) =
  List.iter
    (fun (svar, key, holds) -> Farm.Store.add_lemma store ~svar ~key ~holds)
    oc.Farm.Exec.oc_new_lemmas;
  if not oc.Farm.Exec.oc_report_hit then
    Farm.Store.add_report store ~key:oc.Farm.Exec.oc_report_key
      oc.Farm.Exec.oc_report;
  Farm.Store.save store

let test_invalidation_soundness () =
  let small7 = { small with Cli.d_timer_width = 7 } in
  let store = load (fresh_dir "farm-inval-warm") in
  let cold8 = Farm.Exec.run ~store (job small) in
  Alcotest.(check bool) "cold run is a miss" false cold8.Farm.Exec.oc_report_hit;
  merge_outcome store cold8;
  (* the delta: 8 -> 7 bit timer. Warm run against the tw=8 cache. *)
  let warm7 = Farm.Exec.run ~store (job small7) in
  let cold7 =
    Farm.Exec.run ~store:(load (fresh_dir "farm-inval-cold"))
      (job small7)
  in
  Alcotest.(check bool) "warm is not a report hit" false
    warm7.Farm.Exec.oc_report_hit;
  Alcotest.(check bool) "warm served from lemma cache" true
    (warm7.Farm.Exec.oc_lemma_hits > 0);
  Alcotest.(check bool) "warm re-solved the cone" true
    (warm7.Farm.Exec.oc_lemma_misses > 0);
  Alcotest.(check int) "every miss is an invalidation (no new svars)"
    warm7.Farm.Exec.oc_lemma_misses warm7.Farm.Exec.oc_invalidated;
  Alcotest.(check string) "warm verdict bit-identical to cold"
    (semantic cold7.Farm.Exec.oc_report)
    (semantic warm7.Farm.Exec.oc_report);
  (* re-solved exactly the key-changed cone: no changed-key svar may
     be served from cache, and cold8's lemmas for unchanged keys are
     what the warm run consumed *)
  let changed =
    let k8 = all_keys small and k7 = all_keys small7 in
    List.filter_map
      (fun (n, k) ->
        match List.assoc_opt n k7 with
        | Some k' when k' <> k -> Some n
        | _ -> None)
      k8
  in
  Alcotest.(check bool) "delta has a non-empty cone" true (changed <> []);
  let cached_names =
    match
      Json.member "cache" warm7.Farm.Exec.oc_report |> Json.member "cached_svars"
    with
    | Json.List l ->
        List.filter_map
          (fun e ->
            match Json.member "name" e with Json.Str s -> Some s | _ -> None)
          l
    | _ -> []
  in
  Alcotest.(check bool) "warm run cached something" true (cached_names <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " (changed key) must re-solve, not hit")
        false (List.mem n cached_names))
    changed;
  (* resubmission of the warm job is now a report-level hit *)
  merge_outcome store warm7;
  let again = Farm.Exec.run ~store (job small7) in
  Alcotest.(check bool) "resubmission hits" true again.Farm.Exec.oc_report_hit;
  Alcotest.(check string) "served artefact identical"
    (semantic warm7.Farm.Exec.oc_report)
    (semantic again.Farm.Exec.oc_report)

let test_certified_warm () =
  let small7 = { small with Cli.d_timer_width = 7 } in
  let store = load (fresh_dir "farm-cert-warm") in
  merge_outcome store (Farm.Exec.run ~store (job ~certify:true small));
  let warm = Farm.Exec.run ~store (job ~certify:true small7) in
  let cold =
    Farm.Exec.run ~store:(load (fresh_dir "farm-cert-cold"))
      (job ~certify:true small7)
  in
  Alcotest.(check bool) "warm certified run used the cache" true
    (warm.Farm.Exec.oc_lemma_hits > 0);
  Alcotest.(check string) "certified verdict bit-identical"
    (semantic cold.Farm.Exec.oc_report)
    (semantic warm.Farm.Exec.oc_report);
  (* the fresh cone solves are still certified *)
  match Json.member "cert" cold.Farm.Exec.oc_report with
  | Json.Null -> Alcotest.fail "cold certified run carries no cert block"
  | _ -> ()

(* Corruption does not poison verdicts: a torn publish (the
   [truncate_store] chaos directive) or an overwritten artefact is
   quarantined on first read and the key re-solves to a bit-identical
   verdict. *)
let test_quarantined_key_resolves () =
  let dir = fresh_dir "farm-quarantine-resolve" in
  let store = loadw dir in
  let cold = Farm.Exec.run ~store (job small) in
  merge_outcome store cold;
  with_chaos "truncate_store:1" (fun () ->
      Farm.Store.add_report store ~key:"torn"
        (Json.Obj [ ("pad", Json.Str (String.make 64 'x')) ]));
  Alcotest.(check bool)
    "torn artefact refused" true
    (Farm.Store.report store ~key:"torn" = None);
  Alcotest.(check bool)
    "torn artefact quarantined" true
    (Farm.Store.quarantined store >= 1);
  (* now damage the real report; the key must re-solve, not hit *)
  let path =
    Filename.concat dir ("reports/" ^ cold.Farm.Exec.oc_report_key ^ ".json")
  in
  let oc = open_out path in
  output_string oc "{\"half\":";
  close_out oc;
  let again = Farm.Exec.run ~store (job small) in
  Alcotest.(check bool)
    "damaged report is a miss, not a hit" false
    again.Farm.Exec.oc_report_hit;
  Alcotest.(check string) "re-solved verdict bit-identical"
    (semantic cold.Farm.Exec.oc_report)
    (semantic again.Farm.Exec.oc_report)

(* ---- options key separates strategies ---- *)

let test_options_key () =
  let j1 = job small and j2 = job { small with Cli.d_depth = 4 } in
  Alcotest.(check string) "options key ignores the design"
    (Farm.Job.options_key j1) (Farm.Job.options_key j2);
  let j3 = { j1 with Farm.Job.jb_alg = 2 } in
  Alcotest.(check bool) "algorithm is part of the key" true
    (Farm.Job.options_key j1 <> Farm.Job.options_key j3);
  let j4 =
    { j1 with Farm.Job.jb_options = { j1.Farm.Job.jb_options with O.jobs = Some 2 } }
  in
  Alcotest.(check bool) "job count is part of the key" true
    (Farm.Job.options_key j1 <> Farm.Job.options_key j4);
  Alcotest.(check bool) "report keys differ across designs" true
    (Farm.Exec.report_key j1 <> Farm.Exec.report_key j2)


(* ---- graceful degradation (in process) ---- *)

let farm_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/upec_farm.exe"

let worker_argv cache = [| farm_exe; "worker"; "--cache"; cache |]

(* A zero-worker daemon is cache-only: hits are still answered, misses
   are refused as degraded — never queued forever. *)
let test_cache_only_degraded () =
  let dir = fresh_dir "farm-degraded" in
  Unix.mkdir dir 0o755;
  let cache = Filename.concat dir "cache" in
  let store = loadw cache in
  merge_outcome store (Farm.Exec.run ~store (job ~id:"warm" small));
  let server =
    Farm.Server.create ~cache_dir:cache ~worker_argv:(worker_argv cache)
      ~workers:0 ~job_timeout:0.0 ()
  in
  Fun.protect
    ~finally:(fun () -> Farm.Server.close server)
    (fun () ->
      match
        Farm.Server.run_batch server
          ~jobs:
            [
              Farm.Job.to_json (job ~id:"warm" small);
              Farm.Job.to_json (job ~id:"miss" { small with Cli.d_depth = 4 });
            ]
      with
      | [ hit; miss ] ->
          Alcotest.(check (option bool))
            "hit answered" (Some true)
            (Json.to_bool (Json.member "ok" hit));
          Alcotest.(check (option bool))
            "from cache" (Some true)
            (Json.to_bool (Json.member "cached" hit));
          Alcotest.(check (option bool))
            "miss refused" (Some false)
            (Json.to_bool (Json.member "ok" miss));
          Alcotest.(check (option bool))
            "flagged degraded" (Some true)
            (Json.to_bool (Json.member "degraded" miss))
      | _ -> Alcotest.fail "two replies expected")

(* Past the queue bound, submissions are shed immediately as
   overloaded — the accepted ones still complete. *)
let test_overloaded_shedding () =
  let dir = fresh_dir "farm-overload" in
  Unix.mkdir dir 0o755;
  let cache = Filename.concat dir "cache" in
  let server =
    Farm.Server.create ~cache_dir:cache ~worker_argv:(worker_argv cache)
      ~workers:1 ~job_timeout:0.0 ~max_queue:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Farm.Server.close server)
    (fun () ->
      match
        Farm.Server.run_batch server
          ~jobs:
            [
              Farm.Job.to_json (job ~id:"q1" small);
              Farm.Job.to_json (job ~id:"q2" { small with Cli.d_depth = 4 });
              Farm.Job.to_json
                (job ~id:"q3" { small with Cli.d_timer_width = 7 });
            ]
      with
      | [ r1; r2; r3 ] ->
          Alcotest.(check (option bool))
            "leased job served" (Some true)
            (Json.to_bool (Json.member "ok" r1));
          Alcotest.(check (option bool))
            "queued job served" (Some true)
            (Json.to_bool (Json.member "ok" r2));
          Alcotest.(check (option bool))
            "past the bound: shed" (Some true)
            (Json.to_bool (Json.member "overloaded" r3));
          Alcotest.(check (option bool))
            "shed is not ok" (Some false)
            (Json.to_bool (Json.member "ok" r3))
      | _ -> Alcotest.fail "three replies expected")

(* ---- end to end: the daemon over its socket(s) ---- *)

let rpc socket j = Farm.Client.request (Farm.Client.local socket) j

let submit_op j =
  Json.Obj [ ("op", Json.Str "submit"); ("job", Farm.Job.to_json j) ]

let op name = Json.Obj [ ("op", Json.Str name) ]

(* Spawn `upec_farm serve` with chaos variables stripped from the
   inherited environment ([env] adds them back deliberately), wait for
   the unix socket, run [f], and always reap the daemon. *)
let with_daemon ?(env = []) ?(args = []) dirname f =
  let dir = fresh_dir dirname in
  Unix.mkdir dir 0o755;
  let socket = Filename.concat dir "farm.sock" in
  let cache = Filename.concat dir "cache" in
  let argv =
    Array.of_list
      ([ farm_exe; "serve"; "--socket"; socket; "--cache"; cache ] @ args)
  in
  let base =
    List.filter
      (fun s -> not (String.starts_with ~prefix:"UPEC_FARM_CHAOS" s))
      (Array.to_list (Unix.environment ()))
  in
  let envp = Array.of_list (base @ List.map (fun (k, v) -> k ^ "=" ^ v) env) in
  let pid =
    Unix.create_process_env farm_exe argv envp Unix.stdin Unix.stdout
      Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      let rec wait_sock n =
        if Sys.file_exists socket then ()
        else if n = 0 then Alcotest.fail "daemon never bound its socket"
        else begin
          Unix.sleepf 0.05;
          wait_sock (n - 1)
        end
      in
      wait_sock 200;
      f ~socket ~cache ~pid)

let test_daemon_roundtrip () =
  with_daemon ~args:[ "--workers"; "1" ] "farm-e2e"
    (fun ~socket ~cache:_ ~pid ->
      let r1 = rpc socket (submit_op (job ~id:"e2e" small)) in
      Alcotest.(check (option bool))
        "first submit ok" (Some true)
        (Json.to_bool (Json.member "ok" r1));
      Alcotest.(check (option bool))
        "first submit solves" (Some false)
        (Json.to_bool (Json.member "cached" r1));
      let r2 = rpc socket (submit_op (job ~id:"e2e" small)) in
      Alcotest.(check (option bool))
        "resubmission served from cache" (Some true)
        (Json.to_bool (Json.member "cached" r2));
      Alcotest.(check string) "served verdict identical"
        (semantic (Json.member "report" r1))
        (semantic (Json.member "report" r2));
      let st = rpc socket (op "status") in
      Alcotest.(check (option bool))
        "status ok" (Some true)
        (Json.to_bool (Json.member "ok" st));
      let bye = rpc socket (op "shutdown") in
      Alcotest.(check (option bool))
        "shutdown acknowledged" (Some true)
        (Json.to_bool (Json.member "ok" bye));
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool)
        "daemon exited cleanly" true
        (status = Unix.WEXITED 0))

(* The chaos gate: a worker SIGKILLed mid-job (shared budget of one
   kill across the whole farm) is lease-retried and the batch
   completes with verdicts bit-identical to an uninjected run. *)
let test_chaos_kill_bit_identical () =
  let budget = fresh_dir "farm-chaos-kill-budget" in
  let env = Farm.Chaos.arm_dir ~dir:budget [ ("kill_worker_mid_job", 1) ] in
  with_daemon ~env
    ~args:[ "--workers"; "1"; "--job-retries"; "2" ]
    "farm-chaos-kill"
    (fun ~socket ~cache:_ ~pid:_ ->
      let d2 = { small with Cli.d_depth = 4 } in
      let r1 = rpc socket (submit_op (job ~id:"k1" small)) in
      let r2 = rpc socket (submit_op (job ~id:"k2" d2)) in
      Alcotest.(check (option bool))
        "killed job completes" (Some true)
        (Json.to_bool (Json.member "ok" r1));
      Alcotest.(check (option bool))
        "rest of the batch completes" (Some true)
        (Json.to_bool (Json.member "ok" r2));
      let clean1 =
        Farm.Exec.run ~store:(load (fresh_dir "farm-chaos-clean1"))
          (job ~id:"k1" small)
      in
      let clean2 =
        Farm.Exec.run ~store:(load (fresh_dir "farm-chaos-clean2"))
          (job ~id:"k2" d2)
      in
      Alcotest.(check string) "retried verdict bit-identical to a clean run"
        (semantic clean1.Farm.Exec.oc_report)
        (semantic (Json.member "report" r1));
      Alcotest.(check string) "unkilled verdict identical too"
        (semantic clean2.Farm.Exec.oc_report)
        (semantic (Json.member "report" r2));
      let st = rpc socket (op "status") in
      Alcotest.(check bool) "the kill really happened" true
        (match Json.to_int (Json.member "worker_crashes" st) with
        | Some n -> n >= 1
        | None -> false);
      Alcotest.(check bool) "and was lease-retried" true
        (match Json.to_int (Json.member "job_retries" st) with
        | Some n -> n >= 1
        | None -> false);
      Alcotest.(check (option int))
        "nothing poisoned" (Some 0)
        (Json.to_int (Json.member "jobs_poisoned" st)))

(* Per-process budgets (no UPEC_FARM_CHAOS_DIR) re-arm on every worker
   respawn: the job kills every worker it touches, exhausts its
   retries and is reported poisoned — and the daemon survives it. *)
let test_chaos_poisoned () =
  with_daemon
    ~env:[ ("UPEC_FARM_CHAOS", "kill_worker_mid_job") ]
    ~args:[ "--workers"; "1"; "--job-retries"; "1" ]
    "farm-chaos-poison"
    (fun ~socket ~cache:_ ~pid:_ ->
      let r = rpc socket (submit_op (job ~id:"px" small)) in
      Alcotest.(check (option bool))
        "refused, not dropped" (Some false)
        (Json.to_bool (Json.member "ok" r));
      Alcotest.(check (option bool))
        "flagged poisoned" (Some true)
        (Json.to_bool (Json.member "poisoned" r));
      Alcotest.(check (option int))
        "after initial attempt + one retry" (Some 2)
        (Json.to_int (Json.member "attempts" r));
      let st = rpc socket (op "status") in
      Alcotest.(check (option bool))
        "daemon survives its poisoned job" (Some true)
        (Json.to_bool (Json.member "ok" st));
      Alcotest.(check (option int))
        "counted" (Some 1)
        (Json.to_int (Json.member "jobs_poisoned" st)))

(* A watchdog kill is a timeout, not a crash: the failure taxonomy
   must keep the two apart in replies and counters. *)
let test_chaos_timeout_taxonomy () =
  with_daemon
    ~args:
      [ "--workers"; "1"; "--job-retries"; "0"; "--job-timeout"; "0.01" ]
    "farm-chaos-timeout"
    (fun ~socket ~cache:_ ~pid:_ ->
      let r = rpc socket (submit_op (job ~id:"slow" Cli.default_design)) in
      Alcotest.(check (option bool))
        "refused" (Some false)
        (Json.to_bool (Json.member "ok" r));
      Alcotest.(check (option bool))
        "poisoned (no retries configured)" (Some true)
        (Json.to_bool (Json.member "poisoned" r));
      (match Json.to_str (Json.member "error" r) with
      | Some msg ->
          Alcotest.(check bool) "reply names the timeout" true
            (contains msg "timeout")
      | None -> Alcotest.fail "poisoned reply carries no error message");
      let st = rpc socket (op "status") in
      Alcotest.(check (option int))
        "counted as a timeout" (Some 1)
        (Json.to_int (Json.member "worker_timeouts" st));
      Alcotest.(check (option int))
        "not as a crash" (Some 0)
        (Json.to_int (Json.member "worker_crashes" st)))

(* Client-side faults: a dropped connection and a stalled server are
   absorbed by the bounded retry; when every attempt fails the client
   raises Unavailable instead of hanging. *)
let test_client_retry () =
  with_daemon ~args:[ "--workers"; "1" ] "farm-client-retry"
    (fun ~socket ~cache:_ ~pid:_ ->
      with_chaos "drop_conn:1" (fun () ->
          let st =
            Farm.Client.request ~timeout:10.0 ~backoff:0.01
              (Farm.Client.local socket) (op "status")
          in
          Alcotest.(check (option bool))
            "retry absorbed the dropped connection" (Some true)
            (Json.to_bool (Json.member "ok" st)));
      with_chaos "stall_conn:1" (fun () ->
          let st =
            Farm.Client.request ~timeout:0.5 ~backoff:0.01
              (Farm.Client.local socket) (op "status")
          in
          Alcotest.(check (option bool))
            "deadline + retry absorbed the stall" (Some true)
            (Json.to_bool (Json.member "ok" st)));
      with_chaos "drop_conn:5" (fun () ->
          match
            Farm.Client.request ~timeout:5.0 ~attempts:2 ~backoff:0.01
              (Farm.Client.local socket) (op "status")
          with
          | _ -> Alcotest.fail "exhausted retries must raise Unavailable"
          | exception Farm.Client.Unavailable _ -> ()));
  (* no daemon at all: bounded failure, never a hang *)
  match
    Farm.Client.request ~timeout:0.5 ~attempts:2 ~backoff:0.01
      (Farm.Client.local "farm-client-retry/nope.sock")
      (op "status")
  with
  | _ -> Alcotest.fail "dead socket must raise Unavailable"
  | exception Farm.Client.Unavailable _ -> ()

(* TCP + auth, end to end: an authenticated client round-trips over
   the network transport and shares one cache with the unix socket; a
   wrong or missing token is refused as a reply (never retried into a
   hang); every refusal is counted. *)
let test_tcp_auth () =
  let prep = fresh_dir "farm-tcp-prep" in
  Unix.mkdir prep 0o755;
  let token_file = Filename.concat prep "token" in
  let oc = open_out token_file in
  output_string oc "s3cret-farm-token\n";
  close_out oc;
  let bad_file = Filename.concat prep "bad-token" in
  let oc = open_out bad_file in
  output_string oc "wrong\n";
  close_out oc;
  let port = 19000 + (Unix.getpid () mod 20000) in
  let hp = Printf.sprintf "127.0.0.1:%d" port in
  with_daemon
    ~args:
      [ "--workers"; "1"; "--listen"; hp; "--auth-token-file"; token_file ]
    "farm-tcp"
    (fun ~socket ~cache:_ ~pid:_ ->
      let tcp = Farm.Client.target ~token_file hp in
      let st = Farm.Client.request ~timeout:10.0 tcp (op "status") in
      Alcotest.(check (option bool))
        "authed status over TCP" (Some true)
        (Json.to_bool (Json.member "ok" st));
      let r1 =
        Farm.Client.request ~timeout:600.0 tcp (submit_op (job ~id:"t1" small))
      in
      Alcotest.(check (option bool))
        "solve over TCP" (Some true)
        (Json.to_bool (Json.member "ok" r1));
      let r2 = rpc socket (submit_op (job ~id:"t1" small)) in
      Alcotest.(check (option bool))
        "unix side hits the same cache" (Some true)
        (Json.to_bool (Json.member "cached" r2));
      Alcotest.(check string) "verdict identical across transports"
        (semantic (Json.member "report" r1))
        (semantic (Json.member "report" r2));
      let bad = Farm.Client.target ~token_file:bad_file hp in
      let rb = Farm.Client.request ~timeout:10.0 bad (op "status") in
      Alcotest.(check (option bool))
        "wrong token refused" (Some false)
        (Json.to_bool (Json.member "ok" rb));
      let bare = Farm.Client.target hp in
      let rn = Farm.Client.request ~timeout:10.0 bare (op "status") in
      Alcotest.(check (option bool))
        "tokenless client refused" (Some false)
        (Json.to_bool (Json.member "ok" rn));
      let st = rpc socket (op "status") in
      Alcotest.(check bool) "refusals counted" true
        (match Json.to_int (Json.member "auth_failures" st) with
        | Some n -> n >= 2
        | None -> false))

(* Unauthenticated TCP is refused by design, at startup. *)
let test_listen_requires_token () =
  let dir = fresh_dir "farm-tcp-guard" in
  Unix.mkdir dir 0o755;
  let pid =
    Unix.create_process farm_exe
      [|
        farm_exe; "serve"; "--socket";
        Filename.concat dir "s.sock"; "--cache";
        Filename.concat dir "cache"; "--listen"; "127.0.0.1:1";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 2 -> ()
  | _ -> Alcotest.fail "--listen without --auth-token-file must refuse"

let () =
  Alcotest.run "farm"
    [
      ( "fingerprint",
        [
          QCheck_alcotest.to_alcotest qcheck_rebuild_stable;
          QCheck_alcotest.to_alcotest qcheck_gate_change_differs;
          Alcotest.test_case "variant in fingerprint" `Quick
            test_variant_in_fingerprint;
          Alcotest.test_case "delta changes exactly its cone" `Quick
            test_delta_cone;
        ] );
      ( "wire",
        [
          Alcotest.test_case "address parsing" `Quick test_addr_parsing;
          Alcotest.test_case "length framing" `Quick test_framing;
          Alcotest.test_case "auth primitives" `Quick test_auth_primitives;
        ] );
      ( "chaos",
        [ Alcotest.test_case "directive budgets" `Quick test_chaos_budgets ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "lru gc" `Quick test_store_gc;
          Alcotest.test_case "damage tolerance" `Quick test_store_damage;
          Alcotest.test_case "corruption quarantine" `Quick
            test_store_quarantine;
          Alcotest.test_case "corrupt index quarantined" `Quick
            test_store_corrupt_index_quarantined;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "warm bit-identical, cone re-solved" `Quick
            test_invalidation_soundness;
          Alcotest.test_case "certified warm run" `Quick test_certified_warm;
          Alcotest.test_case "quarantined key re-solves" `Quick
            test_quarantined_key_resolves;
          Alcotest.test_case "options key" `Quick test_options_key;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "cache-only when workerless" `Quick
            test_cache_only_degraded;
          Alcotest.test_case "bounded queue sheds" `Quick
            test_overloaded_shedding;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "socket roundtrip" `Quick test_daemon_roundtrip;
          Alcotest.test_case "client retries faults" `Quick test_client_retry;
          Alcotest.test_case "worker kill: bit-identical verdicts" `Quick
            test_chaos_kill_bit_identical;
          Alcotest.test_case "poisoned after retries" `Quick
            test_chaos_poisoned;
          Alcotest.test_case "timeout vs crash taxonomy" `Quick
            test_chaos_timeout_taxonomy;
          Alcotest.test_case "tcp auth round trip" `Quick test_tcp_auth;
          Alcotest.test_case "listen requires a token" `Quick
            test_listen_requires_token;
        ] );
    ]
