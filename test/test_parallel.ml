(* Tests for the domain pool and the portfolio SAT runner, and the
   determinism guarantee of the parallel UPEC-SSC strategy: identical
   verdicts, refinement traces and final sets for every job count. *)

module Pool = Parallel.Pool
module Portfolio = Parallel.Portfolio
module S = Satsolver.Solver
module L = Satsolver.Lit

(* ---- pool ---- *)

let test_map_order jobs () =
  Pool.with_pool ~jobs (fun pool ->
      let items = List.init 100 Fun.id in
      let results = Pool.map pool (fun x -> x * x) items in
      Alcotest.(check (list int))
        "results in submission order"
        (List.map (fun x -> x * x) items)
        results)

let test_map_wid () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let wids = Pool.map_wid pool (fun wid _ -> wid) (List.init 64 Fun.id) in
      List.iter
        (fun wid ->
          Alcotest.(check bool) "worker id in range" true (wid >= 0 && wid < 4))
        wids)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map pool
          (fun x -> if x = 17 then failwith "task 17 failed" else x)
          (List.init 40 Fun.id)
      with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg ->
          Alcotest.(check string) "first failing task wins" "task 17 failed" msg)

let test_pool_reusable () =
  (* several map calls over one pool; workers must not wedge *)
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let r = Pool.map pool (fun x -> x + round) (List.init 20 Fun.id) in
        Alcotest.(check int) "round sum"
          (List.fold_left ( + ) 0 (List.init 20 (fun x -> x + round)))
          (List.fold_left ( + ) 0 r)
      done)

let test_map_crash_keeps_pool_alive () =
  (* a raising task must neither deadlock the map nor wedge the pool:
     the exception reaches the caller after all siblings settled, and
     the same pool keeps answering *)
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map pool
           (fun x -> if x mod 7 = 3 then failwith "boom" else x)
           (List.init 50 Fun.id)
       with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure _ -> ());
      let r = Pool.map pool (fun x -> x * 2) (List.init 30 Fun.id) in
      Alcotest.(check (list int))
        "pool alive after a crashed map"
        (List.init 30 (fun x -> x * 2))
        r)

let test_submit_crash_isolation () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let done_count = Atomic.make 0 in
      for i = 0 to 9 do
        Pool.submit pool (fun _wid ->
            if i mod 2 = 0 then failwith "submit crash"
            else Atomic.incr done_count)
      done;
      (* a map call is a barrier: all prior submits have settled after it *)
      ignore (Pool.map pool Fun.id [ 1; 2; 3 ]);
      Alcotest.(check int) "crashes counted, not fatal" 5 (Pool.crashed pool);
      Alcotest.(check int) "surviving submits ran" 5 (Atomic.get done_count))

let test_watchdog_flags_stall () =
  let stalls = Atomic.make 0 in
  Pool.with_pool ~task_deadline:0.05
    ~on_stall:(fun _wid elapsed ->
      Alcotest.(check bool) "elapsed past deadline" true (elapsed >= 0.05);
      Atomic.incr stalls)
    ~jobs:2
    (fun pool ->
      let r =
        Pool.map pool
          (fun x ->
            if x = 0 then Unix.sleepf 0.25;
            x + 1)
          [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list int))
        "stalled task still completes" [ 1; 2; 3; 4 ] r);
  Alcotest.(check bool) "watchdog flagged the slow task" true
    (Atomic.get stalls >= 1)

let test_shutdown_with_queued_tasks () =
  (* shutdown on a non-idle pool drains the queue and never raises *)
  let pool = Pool.create ~jobs:3 () in
  let ran = Atomic.make 0 in
  for _ = 1 to 20 do
    Pool.submit pool (fun _ ->
        Unix.sleepf 0.01;
        Atomic.incr ran)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "queue drained before stopping" 20 (Atomic.get ran);
  Pool.shutdown pool (* idempotent *)

(* ---- portfolio ---- *)

let random_cnf rs =
  let nvars = 12 + Random.State.int rs 8 in
  let nclauses = 3 * nvars + Random.State.int rs (3 * nvars) in
  let clause () =
    List.init 3 (fun _ ->
        L.make (Random.State.int rs nvars) (Random.State.bool rs))
  in
  (nvars, List.init nclauses (fun _ -> clause ()))

let sequential_verdict nvars clauses =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  S.solve s

let clause_satisfied model clause =
  List.exists
    (fun l ->
      let v = model.(L.var l) in
      if L.sign l then v else not v)
    clause

let test_portfolio_agrees () =
  let rs = Random.State.make [| 0x5eed |] in
  for _ = 1 to 50 do
    let nvars, clauses = random_cnf rs in
    let seq = sequential_verdict nvars clauses in
    let o =
      Portfolio.solve ~jobs:4 ~nvars ~clauses ~assumptions:[] ()
    in
    (match (seq, o.Portfolio.verdict) with
    | S.Unsat, Portfolio.Unsat -> ()
    | S.Sat, Portfolio.Sat model ->
        List.iter
          (fun c ->
            Alcotest.(check bool) "model satisfies clause" true
              (clause_satisfied model c))
          clauses
    | S.Sat, Portfolio.Unsat -> Alcotest.fail "portfolio says Unsat, solver Sat"
    | S.Unsat, Portfolio.Sat _ ->
        Alcotest.fail "portfolio says Sat, solver Unsat"
    | _, Portfolio.Unknown r ->
        Alcotest.fail ("unbudgeted portfolio returned Unknown: " ^ r));
    Alcotest.(check bool) "winner index valid" true (o.Portfolio.winner >= 0)
  done

let test_portfolio_jobs1_inline () =
  (* jobs <= 1 must behave exactly like the sequential default solve *)
  let rs = Random.State.make [| 42 |] in
  for _ = 1 to 10 do
    let nvars, clauses = random_cnf rs in
    let seq = sequential_verdict nvars clauses in
    let o = Portfolio.solve ~jobs:1 ~nvars ~clauses ~assumptions:[] () in
    Alcotest.(check bool) "same verdict" true
      (match (seq, o.Portfolio.verdict) with
      | S.Sat, Portfolio.Sat _ | S.Unsat, Portfolio.Unsat -> true
      | _ -> false);
    Alcotest.(check int) "winner is config 0" 0 o.Portfolio.winner
  done

let pigeonhole p h =
  let v pi hi = L.make ((pi * h) + hi) true in
  let at_least = List.init p (fun pi -> List.init h (fun hi -> v pi hi)) in
  let at_most =
    List.concat_map
      (fun hi ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then Some [ L.negate (v p1 hi); L.negate (v p2 hi) ]
                else None)
              (List.init p Fun.id))
          (List.init p Fun.id))
      (List.init h Fun.id)
  in
  (p * h, at_least @ at_most)

let test_portfolio_losers_stats () =
  (* a loser may be cancelled at any point — before its first decision
     included — so exact counters are scheduling-dependent. What is
     deterministic: a conflict-free problem yields zero conflicts in
     every racer (interrupted or not), and the loser aggregate can
     never exceed what all racers together could have done *)
  let nvars, clauses = (2, [ [ L.make 0 true; L.make 1 true ] ]) in
  let o = Portfolio.solve ~jobs:4 ~nvars ~clauses ~assumptions:[] () in
  (match o.Portfolio.verdict with
  | Portfolio.Sat _ -> ()
  | Portfolio.Unsat -> Alcotest.fail "trivial SAT reported Unsat"
  | Portfolio.Unknown r -> Alcotest.fail ("unexpected Unknown: " ^ r));
  Alcotest.(check int) "no conflicts anywhere" 0
    o.Portfolio.losers_stats.S.conflicts;
  Alcotest.(check bool) "bounded decisions" true
    (o.Portfolio.losers_stats.S.decisions <= 3 * 2);
  (* jobs=1 runs inline: no race, no losers *)
  let o1 = Portfolio.solve ~jobs:1 ~nvars ~clauses ~assumptions:[] () in
  Alcotest.(check bool) "no losers inline" true
    (o1.Portfolio.losers_stats = S.zero_stats)

let test_portfolio_losers_after_cancellation () =
  (* a hard UNSAT race: losers are interrupted mid-search, and their
     partial work must still be collected consistently (the aggregate
     never crashes, is non-negative, and the verdict stays sound) *)
  let nvars, clauses = pigeonhole 8 7 in
  for _ = 1 to 3 do
    let o = Portfolio.solve ~jobs:4 ~nvars ~clauses ~assumptions:[] () in
    Alcotest.(check bool) "unsat" true (o.Portfolio.verdict = Portfolio.Unsat);
    let l = o.Portfolio.losers_stats in
    Alcotest.(check bool) "counters non-negative" true
      (l.S.conflicts >= 0 && l.S.decisions >= 0 && l.S.propagations >= 0);
    Alcotest.(check bool) "winner valid" true
      (o.Portfolio.winner >= 0 && o.Portfolio.winner < 4)
  done

let test_portfolio_certified () =
  (* the proof returned must be the winner's and must check out against
     the original CNF, for both the raced and the inline path *)
  let nvars, clauses = pigeonhole 6 5 in
  List.iter
    (fun jobs ->
      let o =
        Portfolio.solve ~certify:true ~jobs ~nvars ~clauses ~assumptions:[] ()
      in
      Alcotest.(check bool) "unsat" true (o.Portfolio.verdict = Portfolio.Unsat);
      match o.Portfolio.proof with
      | None -> Alcotest.fail "certified race returned no proof"
      | Some p -> (
          match
            Cert.Rup.check ~nvars ~clauses ~proof:(Cert.Proof.steps p) ()
          with
          | Ok _ -> ()
          | Error msg ->
              Alcotest.fail
                (Printf.sprintf "winner's proof rejected (jobs=%d): %s" jobs
                   msg)))
    [ 1; 4 ]

(* ---- parallel Alg. 1: determinism across job counts ---- *)

let spec_of variant =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  Upec.Spec.make soc variant

(* runs build separate SoC instances, so svars differ by internal signal
   id across runs; compare the (unique) names instead *)
let names s =
  List.map Rtl.Structural.svar_name (Rtl.Structural.Svar_set.elements s)
  |> List.sort compare

let check_svar_set msg a b =
  Alcotest.(check (list string)) msg (names a) (names b)

let check_same_run r1 r4 =
  Alcotest.(check string) "same procedure" r1.Upec.Report.procedure
    r4.Upec.Report.procedure;
  Alcotest.(check int) "same iteration count" (Upec.Report.iterations r1)
    (Upec.Report.iterations r4);
  List.iter2
    (fun s1 s4 ->
      Alcotest.(check int) "same |S|" s1.Upec.Report.st_s_size
        s4.Upec.Report.st_s_size;
      check_svar_set "same S_cex" s1.Upec.Report.st_cex s4.Upec.Report.st_cex;
      check_svar_set "same persistent hits" s1.Upec.Report.st_pers_hit
        s4.Upec.Report.st_pers_hit)
    r1.Upec.Report.steps r4.Upec.Report.steps;
  match (r1.Upec.Report.verdict, r4.Upec.Report.verdict) with
  | Upec.Report.Secure { s_final = f1 }, Upec.Report.Secure { s_final = f4 } ->
      check_svar_set "same final S" f1 f4
  | ( Upec.Report.Vulnerable { s_cex = c1; _ },
      Upec.Report.Vulnerable { s_cex = c4; _ } ) ->
      check_svar_set "same S_cex" c1 c4
  | v1, v4 ->
      Alcotest.fail
        (Format.asprintf "verdicts differ: %a vs %a" Upec.Report.pp_verdict v1
           Upec.Report.pp_verdict v4)

let test_alg1_jobs_deterministic_vulnerable () =
  let r1 = Upec.Alg1.run ~jobs:1 (spec_of Upec.Spec.Vulnerable) in
  let r4 = Upec.Alg1.run ~jobs:4 (spec_of Upec.Spec.Vulnerable) in
  Alcotest.(check bool) "vulnerable" true (Upec.Report.is_vulnerable r1);
  check_same_run r1 r4

let test_alg1_jobs_deterministic_secure () =
  let r1 = Upec.Alg1.run ~jobs:1 (spec_of Upec.Spec.Secure) in
  let r4 = Upec.Alg1.run ~jobs:4 (spec_of Upec.Spec.Secure) in
  Alcotest.(check bool) "secure" true (Upec.Report.is_secure r1);
  check_same_run r1 r4

let test_alg1_jobs_matches_legacy_verdicts () =
  (* the per-svar strategy must agree with the monolithic iteration on
     the verdict and (for secure runs) the final inductive set *)
  let legacy = Upec.Alg1.run (spec_of Upec.Spec.Secure) in
  let per_svar = Upec.Alg1.run ~jobs:2 (spec_of Upec.Spec.Secure) in
  Alcotest.(check bool) "both secure" true
    (Upec.Report.is_secure legacy && Upec.Report.is_secure per_svar);
  match (legacy.Upec.Report.verdict, per_svar.Upec.Report.verdict) with
  | Upec.Report.Secure { s_final = f1 }, Upec.Report.Secure { s_final = f2 } ->
      check_svar_set "same greatest fixed point" f1 f2
  | _ -> Alcotest.fail "unreachable"

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order (jobs=1)" `Quick (test_map_order 1);
          Alcotest.test_case "map order (jobs=4)" `Quick (test_map_order 4);
          Alcotest.test_case "worker ids" `Quick test_map_wid;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool reusable" `Quick test_pool_reusable;
          Alcotest.test_case "crashed map keeps pool alive" `Quick
            test_map_crash_keeps_pool_alive;
          Alcotest.test_case "submit crash isolation" `Quick
            test_submit_crash_isolation;
          Alcotest.test_case "watchdog flags stall" `Quick
            test_watchdog_flags_stall;
          Alcotest.test_case "shutdown with queued tasks" `Quick
            test_shutdown_with_queued_tasks;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "agrees with sequential (50 CNFs)" `Quick
            test_portfolio_agrees;
          Alcotest.test_case "jobs=1 inline" `Quick test_portfolio_jobs1_inline;
          Alcotest.test_case "losers' stats aggregated" `Quick
            test_portfolio_losers_stats;
          Alcotest.test_case "losers consistent under cancellation" `Quick
            test_portfolio_losers_after_cancellation;
          Alcotest.test_case "certified: winner's proof checks" `Quick
            test_portfolio_certified;
        ] );
      ( "alg1-jobs",
        [
          Alcotest.test_case "vulnerable: jobs 1 = jobs 4" `Slow
            test_alg1_jobs_deterministic_vulnerable;
          Alcotest.test_case "secure: jobs 1 = jobs 4" `Slow
            test_alg1_jobs_deterministic_secure;
          Alcotest.test_case "per-svar = legacy fixed point" `Slow
            test_alg1_jobs_matches_legacy_verdicts;
        ] );
    ]
