(* Tests for the certification subsystem: the DRUP recorder, the
   independent forward RUP checker, the SAT-model checker, the
   counterexample simulator validation, and the certified end-to-end
   UPEC-SSC runs. Deliberately corrupted certificates and mutated
   witnesses must all be rejected. *)

open Rtl
module S = Satsolver.Solver
module L = Satsolver.Lit
module Proof = Cert.Proof
module Rup = Cert.Rup

let lit v s = L.make v s

(* pigeonhole php(p, h): p pigeons into h < p holes, UNSAT *)
let pigeonhole p h =
  let v pi hi = lit ((pi * h) + hi) true in
  let at_least = List.init p (fun pi -> List.init h (fun hi -> v pi hi)) in
  let at_most =
    List.concat_map
      (fun hi ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then
                  Some [ L.negate (v p1 hi); L.negate (v p2 hi) ]
                else None)
              (List.init p Fun.id))
          (List.init p Fun.id))
      (List.init h Fun.id)
  in
  (p * h, at_least @ at_most)

let solve_traced ?options ?(assumptions = []) nvars clauses =
  let s = S.create ?options () in
  let p = Proof.create () in
  S.set_tracer s (Some (Proof.tracer p));
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  (S.solve ~assumptions s, p, s)

(* ---- RUP checking of genuine solver proofs ---- *)

let test_rup_accepts_pigeonhole () =
  let nvars, clauses = pigeonhole 6 5 in
  let verdict, p, _ = solve_traced nvars clauses in
  Alcotest.(check bool) "unsat" true (verdict = S.Unsat);
  Alcotest.(check bool) "proof nonempty" true (Proof.length p > 0);
  match Rup.check ~nvars ~clauses ~proof:(Proof.steps p) () with
  | Ok summary ->
      Alcotest.(check bool) "adds processed" true (summary.Rup.adds > 0);
      Alcotest.(check bool) "propagated" true (summary.Rup.propagations > 0)
  | Error msg -> Alcotest.fail ("genuine certificate rejected: " ^ msg)

let test_rup_accepts_all_option_variants () =
  (* the trace must stay sound whatever heuristics produced it *)
  let d = S.default_options in
  let nvars, clauses = pigeonhole 5 4 in
  List.iter
    (fun options ->
      let verdict, p, _ = solve_traced ~options nvars clauses in
      Alcotest.(check bool) "unsat" true (verdict = S.Unsat);
      match Rup.check ~nvars ~clauses ~proof:(Proof.steps p) () with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("variant proof rejected: " ^ msg))
    [
      d;
      { d with S.use_restarts = false };
      { d with S.use_minimization = false };
      { d with S.use_vsids = false };
    ]

let test_rup_rejects_corruptions () =
  let nvars, clauses = pigeonhole 5 4 in
  let verdict, p, _ = solve_traced nvars clauses in
  Alcotest.(check bool) "unsat" true (verdict = S.Unsat);
  let steps = Proof.steps p in
  let expect_error name proof =
    match Rup.check ~nvars ~clauses ~proof () with
    | Ok _ -> Alcotest.fail (name ^ ": corrupted certificate accepted")
    | Error _ -> ()
  in
  (* a clause that is not RUP: a fresh variable out of nowhere *)
  expect_error "bogus unit"
    (Proof.Add [| lit (nvars + 3) true |] :: steps);
  (* deleting a clause that was never added *)
  expect_error "unknown delete"
    (Proof.Delete [| lit 0 true; lit 1 true |] :: steps);
  (* an empty certificate proves nothing *)
  expect_error "empty proof" [];
  (* truncation: the contradiction is never established *)
  expect_error "truncated proof"
    (match steps with st :: _ -> [ st ] | [] -> []);
  (* the genuine proof still passes (the corruptions above are the
     only reason for rejection) *)
  match Rup.check ~nvars ~clauses ~proof:steps () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("control check failed: " ^ msg)

let test_rup_under_assumptions () =
  (* x0 -> x1 -> ... -> x9 with assumptions x0, ~x9: UNSAT purely by
     propagation, so the certificate has no learnt clauses at all and
     acceptance rests on the final assumption check *)
  let nvars = 10 in
  let clauses = List.init 9 (fun i -> [ lit i false; lit (i + 1) true ]) in
  let assumptions = [ lit 0 true; lit 9 false ] in
  let verdict, p, _ = solve_traced ~assumptions nvars clauses in
  Alcotest.(check bool) "unsat under assumptions" true (verdict = S.Unsat);
  (match Rup.check ~assumptions ~nvars ~clauses ~proof:(Proof.steps p) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("assumption certificate rejected: " ^ msg));
  (* without the assumptions the formula is satisfiable: the same
     certificate must NOT establish unsatisfiability *)
  match Rup.check ~nvars ~clauses ~proof:(Proof.steps p) () with
  | Ok _ -> Alcotest.fail "accepted a proof of a satisfiable formula"
  | Error _ -> ()

let test_drup_roundtrip () =
  let nvars, clauses = pigeonhole 5 4 in
  let _, p, _ = solve_traced nvars clauses in
  let text = Proof.to_string p in
  let steps' = Proof.parse_drup text in
  Alcotest.(check bool) "step-for-step identical" true
    (Proof.steps p = steps');
  (* the streaming file tracer writes the same text *)
  let path = Filename.temp_file "proof" ".drup" in
  let oc = open_out path in
  let tr = Proof.file_tracer oc in
  List.iter
    (function
      | Proof.Add c -> tr.S.trace_add c
      | Proof.Delete c -> tr.S.trace_delete c)
    (Proof.steps p);
  close_out oc;
  let ic = open_in path in
  let streamed = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "streamed = in-core" text streamed

(* ---- streaming DRUP parsing ---- *)

let test_streaming_parse_drup () =
  let nvars, clauses = pigeonhole 5 4 in
  let _, p, _ = solve_traced nvars clauses in
  let text = Proof.to_string p in
  (* the streaming reader and the legacy whole-string parser agree *)
  let streamed = ref [] in
  let lines = String.split_on_char '\n' text in
  let rest = ref lines in
  let next () =
    match !rest with
    | [] -> None
    | l :: tl ->
        rest := tl;
        Some l
  in
  let ending = Proof.read_drup ~next ~emit:(fun st -> streamed := st :: !streamed) in
  Alcotest.(check bool) "no marker in plain dump" true
    (ending = Proof.Unterminated);
  Alcotest.(check bool) "streamed = parse_drup" true
    (List.rev !streamed = Proof.parse_drup text);
  Alcotest.(check bool) "streamed = recorded" true
    (List.rev !streamed = Proof.steps p);
  (* end-of-stream markers are recognized, not parsed as steps *)
  let with_suffix suffix =
    let n = ref 0 in
    let rest = ref (String.split_on_char '\n' (text ^ suffix)) in
    let next () =
      match !rest with [] -> None | l :: tl -> rest := tl; Some l
    in
    let e = Proof.read_drup ~next ~emit:(fun _ -> incr n) in
    (e, !n)
  in
  let n_steps = List.length (Proof.steps p) in
  Alcotest.(check bool) "complete marker" true
    (with_suffix (Proof.complete_marker ^ "\n") = (Proof.Complete, n_steps));
  Alcotest.(check bool) "truncated marker" true
    (with_suffix (Proof.truncated_marker ^ "\n") = (Proof.Truncated, n_steps));
  (* malformed input still fails loudly *)
  match Proof.parse_drup "1 2 garbage 0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed DRUP accepted"

(* ---- pipelined parallel checking ---- *)

module Pipeline = Cert.Pipeline

(* Pool-backed dispatch, created lazily exactly like Portfolio's. *)
let pool_dispatch jobs =
  let pool = ref None in
  let get () =
    match !pool with
    | Some p -> p
    | None ->
        let p = Parallel.Pool.create ~jobs () in
        pool := Some p;
        p
  in
  {
    Pipeline.d_run = (fun f -> Parallel.Pool.submit (get ()) (fun _ -> f ()));
    d_shutdown =
      (fun () ->
        match !pool with
        | Some p ->
            pool := None;
            Parallel.Pool.shutdown p
        | None -> ());
  }

(* Replay a recorded certificate through a pipeline's tracer, injecting
   barrier hints every [barrier_every] steps the way the solver does at
   restarts — small epochs force real sharding on small proofs. *)
let replay_pipeline ?dispatch ?(epoch_target = 16) ?max_pending ?assumptions
    ?(barrier_every = 5) ~nvars ~clauses steps =
  let p =
    Pipeline.create ?dispatch ~epoch_target ?max_pending ?assumptions ~nvars
      ~clauses ()
  in
  let tr = Pipeline.tracer p in
  List.iteri
    (fun i st ->
      (match st with
      | Proof.Add c -> tr.S.trace_add c
      | Proof.Delete c -> tr.S.trace_delete c);
      if (i + 1) mod barrier_every = 0 then tr.S.trace_barrier ())
    steps;
  p

let test_pipeline_matches_sequential () =
  (* accept/reject identity vs the sequential checker, across worker
     counts — including rejection of the same corrupted certificates *)
  let nvars, clauses = pigeonhole 6 5 in
  let verdict, p, _ = solve_traced nvars clauses in
  Alcotest.(check bool) "unsat" true (verdict = S.Unsat);
  let steps = Proof.steps p in
  let corrupted =
    (* splice a non-RUP clause into the middle of the stream *)
    let mid = List.length steps / 2 in
    List.concat
      [
        List.filteri (fun i _ -> i < mid) steps;
        [ Proof.Add [| lit (nvars + 3) true |] ];
        List.filteri (fun i _ -> i >= mid) steps;
      ]
  in
  let dispatches =
    [ ("jobs1", fun () -> Pipeline.inline_dispatch);
      ("jobs2", fun () -> pool_dispatch 2);
      ("jobs4", fun () -> pool_dispatch 4) ]
  in
  List.iter
    (fun (label, mk) ->
      (* genuine certificate: accepted, in more than one epoch *)
      let pl = replay_pipeline ~dispatch:(mk ()) ~nvars ~clauses steps in
      (match Pipeline.finish pl with
      | Ok s ->
          Alcotest.(check bool) (label ^ ": multiple epochs") true
            (s.Pipeline.epochs > 1);
          Alcotest.(check int)
            (label ^ ": every step checked")
            (List.length steps) s.Pipeline.steps
      | Error msg -> Alcotest.fail (label ^ ": genuine proof rejected: " ^ msg));
      (* sequential control *)
      (match Rup.check ~nvars ~clauses ~proof:steps () with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("sequential control rejected: " ^ msg));
      (* corrupted certificate: rejected by both, shard names its epoch *)
      let pl = replay_pipeline ~dispatch:(mk ()) ~nvars ~clauses corrupted in
      (match Pipeline.finish pl with
      | Ok _ -> Alcotest.fail (label ^ ": corrupted proof accepted")
      | Error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool)
            (label ^ ": error names the epoch")
            true (contains msg "epoch"));
      match Rup.check ~nvars ~clauses ~proof:corrupted () with
      | Ok _ -> Alcotest.fail "sequential accepted corrupted proof"
      | Error _ -> ())
    dispatches

let test_pipeline_empty_and_assumptions () =
  (* propagation-only UNSAT under assumptions: no learnt clauses, the
     whole acceptance rests on the final assumption conflict *)
  let nvars = 10 in
  let clauses = List.init 9 (fun i -> [ lit i false; lit (i + 1) true ]) in
  let assumptions = [ lit 0 true; lit 9 false ] in
  let verdict, p, _ = solve_traced ~assumptions nvars clauses in
  Alcotest.(check bool) "unsat" true (verdict = S.Unsat);
  let pl =
    replay_pipeline ~assumptions ~nvars ~clauses (Proof.steps p)
  in
  (match Pipeline.finish pl with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("assumption certificate rejected: " ^ msg));
  (* the same stream without the assumptions proves nothing *)
  let pl = replay_pipeline ~nvars ~clauses (Proof.steps p) in
  match Pipeline.finish pl with
  | Ok _ -> Alcotest.fail "accepted a proof of a satisfiable formula"
  | Error _ -> ()

let test_pipeline_spill_roundtrip () =
  (* max_pending = 0 spills every closed epoch to disk; the re-check at
     finish must accept exactly like the in-memory path and clean up *)
  let nvars, clauses = pigeonhole 6 5 in
  let _, p, _ = solve_traced nvars clauses in
  let pl =
    replay_pipeline ~max_pending:0 ~dispatch:(pool_dispatch 2) ~nvars ~clauses
      (Proof.steps p)
  in
  let spills = Pipeline.spill_files pl in
  Alcotest.(check bool) "epochs actually spilled" true (spills <> []);
  List.iter
    (fun path ->
      Alcotest.(check bool) "spill file exists" true (Sys.file_exists path);
      (* backpressure discipline: every spill file ends with a marker *)
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let last_line =
        match
          String.split_on_char '\n' (String.trim text) |> List.rev
        with
        | l :: _ -> l
        | [] -> ""
      in
      Alcotest.(check string) "complete marker last" Proof.complete_marker
        last_line)
    spills;
  (match Pipeline.finish pl with
  | Ok s ->
      Alcotest.(check bool) "spilled epochs counted" true
        (s.Pipeline.spilled_epochs > 0)
  | Error msg -> Alcotest.fail ("spilled roundtrip rejected: " ^ msg));
  List.iter
    (fun path ->
      Alcotest.(check bool) "spill file removed" false (Sys.file_exists path))
    spills

let test_pipeline_truncated_spill_rejected () =
  (* chop the completion marker (and the final conflict) off one spill
     file: finish must reject and name the truncated epoch *)
  let nvars, clauses = pigeonhole 5 4 in
  let _, p, _ = solve_traced nvars clauses in
  let pl =
    replay_pipeline ~max_pending:0 ~nvars ~clauses (Proof.steps p)
  in
  (match Pipeline.spill_files pl with
  | [] -> Alcotest.fail "expected spilled epochs"
  | path :: _ ->
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let lines = String.split_on_char '\n' (String.trim text) in
      let keep = List.filteri (fun i _ -> i < List.length lines - 2) lines in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      close_out oc);
  match Pipeline.finish pl with
  | Ok _ -> Alcotest.fail "truncated spill accepted"
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the epoch" true (contains msg "epoch")

let test_pipeline_cancel () =
  (* cooperative cancellation mid-stream must leave no stuck domains and
     remove every spill file; cancel is idempotent *)
  let nvars, clauses = pigeonhole 6 5 in
  let _, p, _ = solve_traced nvars clauses in
  let steps = Proof.steps p in
  let half = List.filteri (fun i _ -> i < List.length steps / 2) steps in
  let pl =
    replay_pipeline ~max_pending:0 ~dispatch:(pool_dispatch 2) ~nvars ~clauses
      half
  in
  let spills = Pipeline.spill_files pl in
  Pipeline.cancel pl;
  Pipeline.cancel pl;
  List.iter
    (fun path ->
      Alcotest.(check bool) "spill removed on cancel" false
        (Sys.file_exists path))
    spills

let test_pipeline_portfolio_integration () =
  (* the full wiring: racing solvers stream into per-racer pipelines;
     the winner's stream is checked, losers cancel *)
  let nvars, clauses = pigeonhole 6 5 in
  List.iter
    (fun jobs ->
      let o =
        Parallel.Portfolio.solve ~certify:true ~cert_jobs:2 ~jobs ~nvars
          ~clauses ~assumptions:[] ()
      in
      Alcotest.(check bool) "unsat" true
        (o.Parallel.Portfolio.verdict = Parallel.Portfolio.Unsat);
      match o.Parallel.Portfolio.cert with
      | Some (Ok s) ->
          Alcotest.(check bool) "steps streamed" true (s.Pipeline.steps > 0)
      | Some (Error msg) ->
          Alcotest.fail ("winner's genuine stream rejected: " ^ msg)
      | None -> Alcotest.fail "UNSAT outcome carries no cert result")
    [ 1; 2 ];
  (* SAT outcome: stream cancelled, no cert result, clean return *)
  let sat_clauses = [ [ lit 0 true; lit 1 true ]; [ lit 0 false ] ] in
  let o =
    Parallel.Portfolio.solve ~certify:true ~cert_jobs:2 ~jobs:2 ~nvars:2
      ~clauses:sat_clauses ~assumptions:[] ()
  in
  (match o.Parallel.Portfolio.verdict with
  | Parallel.Portfolio.Sat _ -> ()
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "no cert for SAT" true
    (o.Parallel.Portfolio.cert = None)

(* ---- SAT-model checking ---- *)

let test_model_check () =
  let clauses = [ [ lit 0 true ]; [ lit 0 false; lit 1 true ] ] in
  let verdict, _, s = solve_traced 2 clauses in
  Alcotest.(check bool) "sat" true (verdict = S.Sat);
  let value v = S.value s (lit v true) in
  (match Cert.Model.check ~clauses ~value with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("genuine model rejected: " ^ msg));
  (* mutate the model: flip the forced variable *)
  let mutated v = if v = 0 then not (value v) else value v in
  match Cert.Model.check ~clauses ~value:mutated with
  | Ok () -> Alcotest.fail "mutated model accepted"
  | Error _ -> ()

(* ---- counterexample validation against the simulator ---- *)

let vulnerable_cex =
  (* one solver run shared by the validation tests; the mutation test
     re-extracts because it pokes the witness in place *)
  let fresh () =
    let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
    let spec = Upec.Spec.make soc Upec.Spec.Vulnerable in
    let r = Upec.Alg1.run spec in
    match r.Upec.Report.verdict with
    | Upec.Report.Vulnerable { s_cex; cex } ->
        (soc.Soc.Builder.netlist, s_cex, cex)
    | _ -> Alcotest.fail "tiny baseline SoC must be vulnerable"
  in
  let shared = lazy (fresh ()) in
  fun ?(fresh_copy = false) () ->
    if fresh_copy then fresh () else Lazy.force shared

let test_certval_accepts_genuine () =
  let nl, s_cex, cex = vulnerable_cex () in
  let v = Certval.validate ~claimed:s_cex nl cex in
  if not v.Certval.v_ok then
    Alcotest.fail
      (Format.asprintf "genuine counterexample rejected: %a" Certval.pp_result
         v);
  Alcotest.(check bool) "claimed divergence observed" true
    (Structural.Svar_set.subset s_cex v.Certval.v_diverged);
  Alcotest.(check int) "no mismatches" 0 (List.length v.Certval.v_mismatches)

let test_certval_rejects_mutation () =
  let nl, s_cex, cex = vulnerable_cex ~fresh_copy:true () in
  (* flip one bit of a claimed svar's recorded value at the violated
     cycle: the simulator cannot reproduce the doctored trace *)
  let sv = Structural.Svar_set.choose s_cex in
  let frame = Ipc.Cex.frames cex in
  let old_v = Ipc.Cex.svar_value cex Ipc.Unroller.A ~frame sv in
  let flipped =
    Bitvec.logxor old_v (Bitvec.one (Bitvec.width old_v))
  in
  Ipc.Cex.poke_svar cex Ipc.Unroller.A ~frame sv flipped;
  let v = Certval.validate ~claimed:s_cex nl cex in
  Alcotest.(check bool) "mutated witness rejected" false v.Certval.v_ok;
  Alcotest.(check bool) "mismatch reported" true
    (v.Certval.v_mismatches <> [])

let test_certval_rejects_unobserved_claim () =
  let nl, s_cex, cex = vulnerable_cex () in
  (* claim a divergence the witness does not show: pick any svar the
     simulated instances agree on *)
  let honest = Certval.validate ~claimed:s_cex nl cex in
  Alcotest.(check bool) "baseline ok" true honest.Certval.v_ok;
  let bogus =
    Structural.Svar_set.elements (Structural.all_svars nl)
    |> List.find (fun sv ->
           not (Structural.Svar_set.mem sv honest.Certval.v_diverged))
  in
  let claimed = Structural.Svar_set.add bogus s_cex in
  let v = Certval.validate ~claimed nl cex in
  Alcotest.(check bool) "over-claiming rejected" false v.Certval.v_ok;
  Alcotest.(check bool) "missing svar identified" true
    (Structural.Svar_set.mem bogus v.Certval.v_missing);
  (* the replay itself was still exact: rejection is purely about the
     unobserved claim *)
  Alcotest.(check int) "no replay mismatch" 0
    (List.length v.Certval.v_mismatches)

let test_certval_vcd_dump () =
  let nl, s_cex, cex = vulnerable_cex () in
  let prefix = Filename.temp_file "certval" "" in
  let v = Certval.validate ~vcd_prefix:prefix ~claimed:s_cex nl cex in
  Alcotest.(check bool) "validation ok" true v.Certval.v_ok;
  Alcotest.(check int) "two waveforms" 2 (List.length v.Certval.v_vcd_files);
  List.iter
    (fun path ->
      let ic = open_in path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "timescale present" true
        (contains contents "$timescale 1 ns $end");
      Alcotest.(check bool) "has timesteps" true (contains contents "#1"))
    v.Certval.v_vcd_files;
  Sys.remove prefix

(* ---- certified end-to-end runs ---- *)

let tiny_spec variant =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  Upec.Spec.make soc variant

(* smallest SoC that still produces a real inductive UNSAT proof — the
   secure-variant tests exercise every certification code path without
   paying for the full tiny-SoC solve *)
let micro_spec variant =
  let cfg =
    {
      Soc.Config.formal_tiny with
      Soc.Config.pub_depth = 2;
      priv_depth = 2;
      pub_banks = 1;
      priv_banks = 1;
      with_dma = false;
      with_hwpe = false;
    }
  in
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  Upec.Spec.make soc variant

let cert_of r =
  match r.Upec.Report.cert with
  | Some c -> c
  | None -> Alcotest.fail "certified run carries no certification info"

let test_certified_alg1_vulnerable () =
  let r = Upec.Alg1.run ~certify:true (tiny_spec Upec.Spec.Vulnerable) in
  Alcotest.(check bool) "vulnerable" true (Upec.Report.is_vulnerable r);
  let c = cert_of r in
  Alcotest.(check bool) "cex validated" true
    (c.Upec.Report.ct_cex_validated = Some true);
  Alcotest.(check bool) "models checked" true
    (c.Upec.Report.ct_totals.Proof.sat_checked > 0)

let test_certified_alg1_secure () =
  let r = Upec.Alg1.run ~certify:true (micro_spec Upec.Spec.Secure) in
  Alcotest.(check bool) "secure" true (Upec.Report.is_secure r);
  let c = cert_of r in
  Alcotest.(check bool) "unsat proof checked" true
    (c.Upec.Report.ct_totals.Proof.unsat_checked >= 1);
  Alcotest.(check bool) "proof has steps" true
    (c.Upec.Report.ct_totals.Proof.proof_steps > 0);
  Alcotest.(check bool) "no cex to validate" true
    (c.Upec.Report.ct_cex_validated = None)

let test_certified_alg1_jobs_and_portfolio () =
  (* certification must hold on every execution strategy: per-svar
     sequential and parallel, with and without a portfolio race — and
     the verdicts must agree across all of them *)
  List.iter
    (fun (label, jobs, portfolio) ->
      let r =
        Upec.Alg1.run ~certify:true ?jobs ~portfolio
          (micro_spec Upec.Spec.Secure)
      in
      Alcotest.(check bool) (label ^ ": secure") true (Upec.Report.is_secure r);
      let c = cert_of r in
      Alcotest.(check bool)
        (label ^ ": unsat proofs checked")
        true
        (c.Upec.Report.ct_totals.Proof.unsat_checked >= 1))
    [
      ("jobs1", Some 1, 1);
      ("jobs4", Some 4, 1);
      ("portfolio2", None, 2);
      ("jobs4-portfolio2", Some 4, 2);
    ]

let test_certified_alg1_pipelined () =
  (* end-to-end: the engine's certify path with the streaming checker —
     same verdict and certification coverage as the post-hoc mode *)
  let run cert_jobs =
    Upec.Alg1.run_with
      {
        Upec.Options.default with
        Upec.Options.certify = true;
        cert_jobs;
      }
      (micro_spec Upec.Spec.Secure)
  in
  let seq = run 0 and pipe = run 2 in
  Alcotest.(check bool) "sequential secure" true (Upec.Report.is_secure seq);
  Alcotest.(check bool) "pipelined secure" true (Upec.Report.is_secure pipe);
  let ts = (cert_of seq).Upec.Report.ct_totals
  and tp = (cert_of pipe).Upec.Report.ct_totals in
  Alcotest.(check int) "same UNSAT coverage" ts.Proof.unsat_checked
    tp.Proof.unsat_checked;
  Alcotest.(check bool) "pipelined in epochs" true
    (tp.Proof.epochs >= tp.Proof.unsat_checked);
  Alcotest.(check bool) "sequential has no epochs" true (ts.Proof.epochs = 0)

let test_certified_alg2 () =
  let r = Upec.Alg2.conclude ~certify:true (tiny_spec Upec.Spec.Vulnerable) in
  Alcotest.(check bool) "vulnerable" true (Upec.Report.is_vulnerable r);
  let c = cert_of r in
  Alcotest.(check bool) "cex validated" true
    (c.Upec.Report.ct_cex_validated = Some true);
  let r2 = Upec.Alg2.conclude ~certify:true (micro_spec Upec.Spec.Secure) in
  Alcotest.(check bool) "secure" true (Upec.Report.is_secure r2);
  let c2 = cert_of r2 in
  Alcotest.(check bool) "unsat proofs checked" true
    (c2.Upec.Report.ct_totals.Proof.unsat_checked >= 1)

let () =
  Alcotest.run "cert"
    [
      ( "rup",
        [
          Alcotest.test_case "accepts pigeonhole proof" `Quick
            test_rup_accepts_pigeonhole;
          Alcotest.test_case "accepts all option variants" `Quick
            test_rup_accepts_all_option_variants;
          Alcotest.test_case "rejects corrupted certificates" `Quick
            test_rup_rejects_corruptions;
          Alcotest.test_case "unsat under assumptions" `Quick
            test_rup_under_assumptions;
          Alcotest.test_case "drup text roundtrip" `Quick test_drup_roundtrip;
          Alcotest.test_case "streaming drup reader" `Quick
            test_streaming_parse_drup;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "matches sequential checker" `Quick
            test_pipeline_matches_sequential;
          Alcotest.test_case "assumption-only certificates" `Quick
            test_pipeline_empty_and_assumptions;
          Alcotest.test_case "spill roundtrip" `Quick
            test_pipeline_spill_roundtrip;
          Alcotest.test_case "truncated spill rejected" `Quick
            test_pipeline_truncated_spill_rejected;
          Alcotest.test_case "cancellation" `Quick test_pipeline_cancel;
          Alcotest.test_case "portfolio integration" `Quick
            test_pipeline_portfolio_integration;
        ] );
      ("model", [ Alcotest.test_case "model check" `Quick test_model_check ]);
      ( "certval",
        [
          Alcotest.test_case "accepts genuine counterexample" `Quick
            test_certval_accepts_genuine;
          Alcotest.test_case "rejects mutated witness" `Quick
            test_certval_rejects_mutation;
          Alcotest.test_case "rejects unobserved claim" `Quick
            test_certval_rejects_unobserved_claim;
          Alcotest.test_case "dumps paired VCDs" `Quick test_certval_vcd_dump;
        ] );
      ( "certified-runs",
        [
          Alcotest.test_case "alg1 vulnerable" `Quick
            test_certified_alg1_vulnerable;
          Alcotest.test_case "alg1 secure" `Quick test_certified_alg1_secure;
          Alcotest.test_case "alg1 jobs x portfolio" `Slow
            test_certified_alg1_jobs_and_portfolio;
          Alcotest.test_case "alg1 pipelined vs post-hoc" `Slow
            test_certified_alg1_pipelined;
          Alcotest.test_case "alg2 both variants" `Slow test_certified_alg2;
        ] );
    ]
