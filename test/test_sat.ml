(* Tests for the CDCL SAT solver: handwritten instances, classic
   families, and random instances cross-checked against brute force. *)

open Satsolver

let lit v s = Lit.make v s

let mk_solver ?options nv =
  let s = Solver.create ?options () in
  for _ = 1 to nv do
    ignore (Solver.new_var s)
  done;
  s

let all_option_variants =
  let d = Solver.default_options in
  [
    ("default", d);
    ("no_vsids", { d with Solver.use_vsids = false });
    ("no_restarts", { d with Solver.use_restarts = false });
    ("no_phase", { d with Solver.use_phase_saving = false });
    ("no_minimize", { d with Solver.use_minimization = false });
    ( "bare",
      {
        d with
        Solver.use_vsids = false;
        use_restarts = false;
        use_phase_saving = false;
        use_minimization = false;
      } );
  ]

(* ---- brute force reference ---- *)

let brute_force nv clauses =
  (* true = satisfiable *)
  let rec try_assignment bits =
    if bits >= 1 lsl nv then false
    else
      let sat_clause clause =
        List.exists
          (fun l ->
            let v = Lit.var l in
            let value = bits land (1 lsl v) <> 0 in
            if Lit.sign l then value else not value)
          clause
      in
      if List.for_all sat_clause clauses then true
      else try_assignment (bits + 1)
  in
  try_assignment 0

let check_model s clauses =
  List.for_all (fun clause -> List.exists (fun l -> Solver.value s l) clause)
    clauses

(* ---- handwritten cases ---- *)

let test_empty () =
  let s = mk_solver 3 in
  Alcotest.(check bool) "no clauses is sat" true (Solver.solve s = Solver.Sat)

let test_unit () =
  let s = mk_solver 2 in
  Solver.add_clause s [ lit 0 true ];
  Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "v0 true" true (Solver.value s (lit 0 true));
  Alcotest.(check bool) "v1 false" true (Solver.value s (lit 1 false))

let test_conflicting_units () =
  let s = mk_solver 1 in
  Solver.add_clause s [ lit 0 true ];
  Solver.add_clause s [ lit 0 false ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_empty_clause () =
  let s = mk_solver 1 in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain () =
  (* x0 -> x1 -> ... -> x9, x0 asserted, ~x9 asserted: unsat *)
  let s = mk_solver 10 in
  for i = 0 to 8 do
    Solver.add_clause s [ lit i false; lit (i + 1) true ]
  done;
  Solver.add_clause s [ lit 0 true ];
  Solver.add_clause s [ lit 9 false ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain_sat () =
  let s = mk_solver 10 in
  for i = 0 to 8 do
    Solver.add_clause s [ lit i false; lit (i + 1) true ]
  done;
  Solver.add_clause s [ lit 0 true ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "x%d forced true" i)
      true
      (Solver.value s (lit i true))
  done

let test_tautology_dropped () =
  let s = mk_solver 2 in
  Solver.add_clause s [ lit 0 true; lit 0 false ];
  Solver.add_clause s [ lit 1 true ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

let pigeonhole s pigeons holes =
  (* var p*holes + h: pigeon p in hole h *)
  let v p h = lit ((p * holes) + h) true in
  let nv p h = lit ((p * holes) + h) false in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> v p h))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ nv p1 h; nv p2 h ]
      done
    done
  done

let test_pigeonhole_unsat () =
  List.iter
    (fun (name, options) ->
      let s = mk_solver ~options (5 * 4) in
      pigeonhole s 5 4;
      Alcotest.(check bool)
        (Printf.sprintf "php(5,4) unsat under %s" name)
        true
        (Solver.solve s = Solver.Unsat))
    all_option_variants

let test_pigeonhole_sat () =
  let s = mk_solver (4 * 4) in
  pigeonhole s 4 4;
  Alcotest.(check bool) "php(4,4) sat" true (Solver.solve s = Solver.Sat)

let test_assumptions () =
  let s = mk_solver 3 in
  Solver.add_clause s [ lit 0 false; lit 1 true ];
  (* x0 -> x1 *)
  Solver.add_clause s [ lit 1 false; lit 2 true ];
  (* x1 -> x2 *)
  Alcotest.(check bool)
    "sat under x0" true
    (Solver.solve ~assumptions:[ lit 0 true ] s = Solver.Sat);
  Alcotest.(check bool) "x2 implied" true (Solver.value s (lit 2 true));
  Alcotest.(check bool)
    "unsat under x0 & ~x2" true
    (Solver.solve ~assumptions:[ lit 0 true; lit 2 false ] s = Solver.Unsat);
  Alcotest.(check bool)
    "sat again without assumptions" true
    (Solver.solve s = Solver.Sat)

let test_unsat_core () =
  let s = mk_solver 4 in
  Solver.add_clause s [ lit 0 false; lit 1 true ];
  Solver.add_clause s [ lit 1 false; lit 2 true ];
  let r =
    Solver.solve ~assumptions:[ lit 3 true; lit 0 true; lit 2 false ] s
  in
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat);
  let core = Solver.unsat_assumptions s in
  Alcotest.(check bool) "core nonempty" true (core <> []);
  Alcotest.(check bool)
    "core is subset of assumptions" true
    (List.for_all
       (fun l -> List.mem l [ lit 3 true; lit 0 true; lit 2 false ])
       core);
  Alcotest.(check bool)
    "irrelevant assumption not in core" true
    (not (List.mem (lit 3 true) core))

let test_incremental () =
  let s = mk_solver 3 in
  Solver.add_clause s [ lit 0 true; lit 1 true ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ lit 0 false ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x1 now forced" true (Solver.value s (lit 1 true));
  Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "unsat 3" true (Solver.solve s = Solver.Unsat)

let test_new_vars_after_solve () =
  let s = mk_solver 1 in
  Solver.add_clause s [ lit 0 true ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  let v = Solver.new_var s in
  Solver.add_clause s [ lit v false ];
  Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "new var false" true (Solver.value s (lit v false))

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n" in
  let nv, clauses = Dimacs.parse text in
  Alcotest.(check int) "vars" 3 nv;
  Alcotest.(check int) "clauses" 3 (List.length clauses);
  let printed = Format.asprintf "%a" Dimacs.print (nv, clauses) in
  let nv', clauses' = Dimacs.parse printed in
  Alcotest.(check bool) "roundtrip" true (nv = nv' && clauses = clauses');
  let s = Solver.create () in
  Dimacs.load s text;
  Alcotest.(check bool) "solvable" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x1 false" true (Solver.value s (lit 0 false));
  Alcotest.(check bool) "x2 true (1 -2 with -1)" true
    (Solver.value s (lit 1 false));
  Alcotest.(check bool) "x3 true" true (Solver.value s (lit 2 true))

let test_dimacs_robustness () =
  (* comments anywhere, blank lines, tabs, CRLF, trailing whitespace,
     clauses split across lines, SATLIB '%' end marker *)
  let text =
    "c header comment\r\n\
     \r\n\
     p cnf 4 4   \r\n\
     1\t-2 0\n\
     c mid comment\n\
     \   \n\
     2 3\n\
     0\n\
     -1 4 0  \n\
     -4 0\n\
     %\n\
     0\n\
     this is garbage after the end marker\n"
  in
  let nv, clauses = Dimacs.parse text in
  Alcotest.(check int) "vars" 4 nv;
  Alcotest.(check int) "clauses" 4 (List.length clauses);
  let expect = "p cnf 4 4\n1 -2 0\n2 3 0\n-1 4 0\n-4 0\n" in
  Alcotest.(check string) "printed"
    expect
    (Format.asprintf "%a" Dimacs.print (nv, clauses));
  (* a clause not terminated by 0 at EOF is still flushed *)
  let _, c2 = Dimacs.parse "p cnf 2 1\n1 2\n" in
  Alcotest.(check int) "unterminated clause" 1 (List.length c2);
  (* malformed input still errors *)
  (match Dimacs.parse "p cnf 2 1\n1 x 0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "junk literal must be rejected")

let test_dimacs_header_mismatch_counter () =
  let c = Obs.Metrics.counter "dimacs.header_mismatch" in
  let before = Obs.Metrics.counter_value c in
  (* header promises 3 clauses, file has 1 *)
  let nv, clauses = Dimacs.parse "p cnf 2 3\n1 2 0\n" in
  Alcotest.(check int) "vars" 2 nv;
  Alcotest.(check int) "clauses still parsed" 1 (List.length clauses);
  Alcotest.(check int) "mismatch counted" (before + 1)
    (Obs.Metrics.counter_value c);
  (* a consistent header does not bump the counter *)
  ignore (Dimacs.parse "p cnf 2 1\n1 2 0\n");
  Alcotest.(check int) "no false positive" (before + 1)
    (Obs.Metrics.counter_value c)

let test_dimacs_parse_file_fd_cleanup () =
  (* parse_file must close its channel even when parsing raises;
     regression for the fd leak on malformed input *)
  let path = Filename.temp_file "upec" ".cnf" in
  let oc = open_out path in
  output_string oc "p cnf 2 1\n1 x 0\n";
  close_out oc;
  let count_fds () =
    if Sys.file_exists "/proc/self/fd" then
      Array.length (Sys.readdir "/proc/self/fd")
    else -1
  in
  let before = count_fds () in
  for _ = 1 to 50 do
    match Dimacs.parse_file path with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "malformed file must be rejected"
  done;
  let after = count_fds () in
  Sys.remove path;
  if before >= 0 then
    Alcotest.(check int) "no fd leaked across 50 failing parses" before after

let qcheck_dimacs_roundtrip =
  (* print/parse is the identity on arbitrary well-formed problems *)
  let gen =
    QCheck.Gen.(
      sized_size (int_range 1 12) (fun nc ->
          let* nv = int_range 1 8 in
          let* clauses =
            list_size (return nc)
              (list_size (int_range 1 4)
                 (let* v = int_range 0 (nv - 1) in
                  let* s = bool in
                  return (Lit.make v s)))
          in
          return (nv, clauses)))
  in
  QCheck.Test.make ~count:200 ~name:"dimacs print/parse roundtrip"
    (QCheck.make gen)
    (fun (nv, clauses) ->
      let printed = Format.asprintf "%a" Dimacs.print (nv, clauses) in
      let nv', clauses' = Dimacs.parse printed in
      nv = nv' && clauses = clauses')

let test_stats_populated () =
  let s = mk_solver (5 * 4) in
  pigeonhole s 5 4;
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts > 0" true (st.Solver.conflicts > 0);
  Alcotest.(check bool) "propagations > 0" true (st.Solver.propagations > 0)

(* ---- randomised cross-check ---- *)

let random_cnf rand_state ~nv ~nc ~len =
  List.init nc (fun _ ->
      List.init len (fun _ ->
          let v = Random.State.int rand_state nv in
          lit v (Random.State.bool rand_state)))

let qcheck_random_vs_brute =
  QCheck.Test.make ~count:300 ~name:"random 3-cnf matches brute force"
    QCheck.(triple (int_range 1 10) (int_range 1 40) (int_range 0 1073741823))
    (fun (nv, nc, seed) ->
      let rs = Random.State.make [| seed |] in
      let clauses = random_cnf rs ~nv ~nc ~len:3 in
      let expected = brute_force nv clauses in
      let s = mk_solver nv in
      List.iter (Solver.add_clause s) clauses;
      let got = Solver.solve s = Solver.Sat in
      if got && not (check_model s clauses) then false
      else got = expected)

let qcheck_random_all_variants =
  QCheck.Test.make ~count:60
    ~name:"option variants agree on random instances"
    QCheck.(triple (int_range 1 9) (int_range 1 35) (int_range 0 1073741823))
    (fun (nv, nc, seed) ->
      let rs = Random.State.make [| seed |] in
      let clauses = random_cnf rs ~nv ~nc ~len:3 in
      let expected = brute_force nv clauses in
      List.for_all
        (fun (_, options) ->
          let s = mk_solver ~options nv in
          List.iter (Solver.add_clause s) clauses;
          let got = Solver.solve s = Solver.Sat in
          (not got) || check_model s clauses)
        all_option_variants
      && List.for_all
           (fun (_, options) ->
             let s = mk_solver ~options nv in
             List.iter (Solver.add_clause s) clauses;
             (Solver.solve s = Solver.Sat) = expected)
           all_option_variants)

let qcheck_random_assumptions =
  QCheck.Test.make ~count:150
    ~name:"assumptions behave like added unit clauses"
    QCheck.(triple (int_range 2 8) (int_range 1 25) (int_range 0 1073741823))
    (fun (nv, nc, seed) ->
      let rs = Random.State.make [| seed |] in
      let clauses = random_cnf rs ~nv ~nc ~len:3 in
      let n_assum = 1 + Random.State.int rs 2 in
      let assumptions =
        List.init n_assum (fun _ ->
            lit (Random.State.int rs nv) (Random.State.bool rs))
      in
      let s = mk_solver nv in
      List.iter (Solver.add_clause s) clauses;
      let with_assumptions = Solver.solve ~assumptions s = Solver.Sat in
      let s2 = mk_solver nv in
      List.iter (Solver.add_clause s2) clauses;
      List.iter (fun l -> Solver.add_clause s2 [ l ]) assumptions;
      let with_units = Solver.solve s2 = Solver.Sat in
      with_assumptions = with_units)

let qcheck_lit_encoding =
  QCheck.Test.make ~count:200 ~name:"literal encoding roundtrips"
    QCheck.(pair (int_range 0 10000) bool)
    (fun (v, sign) ->
      let l = Lit.make v sign in
      Lit.var l = v && Lit.sign l = sign
      && Lit.var (Lit.negate l) = v
      && Lit.sign (Lit.negate l) = not sign
      && Lit.of_dimacs (Lit.to_dimacs l) = l)

(* ---- resource budgets ---- *)

let php s pigeons holes = pigeonhole s pigeons holes

let test_budget_unknown_then_reusable () =
  let s = mk_solver (8 * 7) in
  php s 8 7;
  (match Solver.solve_bounded ~budget:(Solver.conflict_budget 10) s with
  | Solver.Unknown reason ->
      Alcotest.(check string)
        "reason names the resource" "conflict budget exhausted" reason
  | Solver.Solved _ -> Alcotest.fail "php(8,7) decided within 10 conflicts");
  (* the same solver stays usable and keeps its learnt clauses: an
     unbudgeted call finishes the proof *)
  Alcotest.(check bool)
    "unsat after lifting the budget" true
    (Solver.solve_bounded s = Solver.Solved Solver.Unsat)

let test_budget_trivial_within () =
  let s = mk_solver 3 in
  Solver.add_clause s [ lit 0 true; lit 1 true ];
  Solver.add_clause s [ lit 2 false ];
  Alcotest.(check bool)
    "trivial sat fits any budget" true
    (Solver.solve_bounded ~budget:(Solver.conflict_budget 1) s
    = Solver.Solved Solver.Sat)

let test_time_budget () =
  let s = mk_solver (9 * 8) in
  php s 9 8;
  match Solver.solve_bounded ~budget:(Solver.time_budget 1e-6) s with
  | Solver.Unknown reason ->
      Alcotest.(check string)
        "reason names the resource" "time budget exhausted" reason
  | Solver.Solved _ -> Alcotest.fail "php(9,8) decided within a microsecond"

let test_budget_escalation_converges () =
  let s = mk_solver (8 * 7) in
  php s 8 7;
  let rec attempt n b =
    match Solver.solve_bounded ~budget:b s with
    | Solver.Solved r -> (n, r)
    | Solver.Unknown _ -> attempt (n + 1) (Solver.scale_budget b 4.0)
  in
  let attempts, r = attempt 0 (Solver.conflict_budget 5) in
  Alcotest.(check bool) "eventually unsat" true (r = Solver.Unsat);
  Alcotest.(check bool)
    (Printf.sprintf "needed escalation (%d attempts)" attempts)
    true (attempts > 0)

let test_scale_budget () =
  let b = Solver.scale_budget (Solver.conflict_budget 10) 4.0 in
  Alcotest.(check int) "conflicts scaled" 40 b.Solver.max_conflicts;
  Alcotest.(check int) "unlimited stays unlimited" (-1) b.Solver.max_propagations;
  Alcotest.(check (float 1e-9))
    "unset time stays unset" 0.0 b.Solver.max_seconds

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "empty problem" `Quick test_empty;
          Alcotest.test_case "unit clauses" `Quick test_unit;
          Alcotest.test_case "conflicting units" `Quick test_conflicting_units;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "implication chain unsat" `Quick
            test_implication_chain;
          Alcotest.test_case "implication chain sat" `Quick
            test_implication_chain_sat;
          Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
          Alcotest.test_case "pigeonhole unsat (all options)" `Quick
            test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "unsat core" `Quick test_unsat_core;
          Alcotest.test_case "incremental solving" `Quick test_incremental;
          Alcotest.test_case "new vars after solve" `Quick
            test_new_vars_after_solve;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dimacs robustness" `Quick test_dimacs_robustness;
          Alcotest.test_case "dimacs header mismatch counter" `Quick
            test_dimacs_header_mismatch_counter;
          Alcotest.test_case "dimacs parse_file fd cleanup" `Quick
            test_dimacs_parse_file_fd_cleanup;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unknown then reusable" `Quick
            test_budget_unknown_then_reusable;
          Alcotest.test_case "trivial sat within budget" `Quick
            test_budget_trivial_within;
          Alcotest.test_case "time budget" `Quick test_time_budget;
          Alcotest.test_case "escalation converges" `Quick
            test_budget_escalation_converges;
          Alcotest.test_case "scale_budget" `Quick test_scale_budget;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_random_vs_brute;
            qcheck_random_all_variants;
            qcheck_random_assumptions;
            qcheck_lit_encoding;
            qcheck_dimacs_roundtrip;
          ] );
    ]
