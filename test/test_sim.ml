(* Tests for the cycle-accurate simulator. *)

open Rtl

let bv w v = Bitvec.of_int ~width:w v

let build_counter () =
  let open Netlist.Builder in
  let b = create "counter" in
  let enable = input b "enable" 1 in
  let count = reg b "count" 8 in
  set_next b count (Expr.mux enable Expr.(count +: one 8) count);
  output b "next_is_five" Expr.(count +: one 8 ==: of_int ~width:8 5);
  finalize b

let test_counter_steps () =
  let eng = Sim.Engine.create (build_counter ()) in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 5;
  Alcotest.(check int) "count = 5" 5
    (Bitvec.to_int (Sim.Engine.reg_value eng "count"));
  Sim.Engine.set_input_int eng "enable" 0;
  Sim.Engine.run eng 3;
  Alcotest.(check int) "still 5" 5
    (Bitvec.to_int (Sim.Engine.reg_value eng "count"));
  Alcotest.(check int) "cycles" 8 (Sim.Engine.cycle eng)

let test_peek_output () =
  let eng = Sim.Engine.create (build_counter ()) in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 4;
  Alcotest.(check int) "combinational output" 1
    (Bitvec.to_int (Sim.Engine.peek_output eng "next_is_five"))

let test_reset_values () =
  let open Netlist.Builder in
  let b = create "resettest" in
  let r = reg b ~init:(bv 8 42) "r" 8 in
  ignore r;
  let nl = finalize b in
  let eng = Sim.Engine.create nl in
  Alcotest.(check int) "init value" 42
    (Bitvec.to_int (Sim.Engine.reg_value eng "r"));
  Sim.Engine.step eng;
  Alcotest.(check int) "held" 42 (Bitvec.to_int (Sim.Engine.reg_value eng "r"))

let build_memory_device () =
  let open Netlist.Builder in
  let b = create "mem" in
  let wen = input b "wen" 1 in
  let waddr = input b "waddr" 3 in
  let wdata = input b "wdata" 8 in
  let raddr = input b "raddr" 3 in
  let m = mem b "m" ~addr_width:3 ~data_width:8 ~depth:8 in
  write_port b m ~enable:wen ~addr:waddr ~data:wdata;
  output b "rdata" (Expr.memread m raddr);
  finalize b

let test_memory_write_read () =
  let eng = Sim.Engine.create (build_memory_device ()) in
  Sim.Engine.set_input_int eng "wen" 1;
  Sim.Engine.set_input_int eng "waddr" 3;
  Sim.Engine.set_input_int eng "wdata" 0xab;
  Sim.Engine.step eng;
  Sim.Engine.set_input_int eng "wen" 0;
  Sim.Engine.set_input_int eng "raddr" 3;
  Alcotest.(check int) "read back" 0xab
    (Bitvec.to_int (Sim.Engine.peek_output eng "rdata"));
  Alcotest.(check int) "mem_value" 0xab
    (Bitvec.to_int (Sim.Engine.mem_value eng "m" 3));
  Sim.Engine.set_input_int eng "raddr" 2;
  Alcotest.(check int) "other cell zero" 0
    (Bitvec.to_int (Sim.Engine.peek_output eng "rdata"))

let test_memory_port_priority () =
  let open Netlist.Builder in
  let b = create "prio" in
  let m = mem b "m" ~addr_width:2 ~data_width:8 ~depth:4 in
  (* two always-on ports to the same address; first must win *)
  write_port b m ~enable:Expr.vdd ~addr:(Expr.zero 2)
    ~data:(Expr.of_int ~width:8 1);
  write_port b m ~enable:Expr.vdd ~addr:(Expr.zero 2)
    ~data:(Expr.of_int ~width:8 2);
  let nl = finalize b in
  let eng = Sim.Engine.create nl in
  Sim.Engine.step eng;
  Alcotest.(check int) "first port wins" 1
    (Bitvec.to_int (Sim.Engine.mem_value eng "m" 0))

let test_two_phase_semantics () =
  (* A swap register pair must exchange values atomically. *)
  let open Netlist.Builder in
  let b = create "swap" in
  let x = reg b ~init:(bv 8 1) "x" 8 in
  let y = reg b ~init:(bv 8 2) "y" 8 in
  set_next b x y;
  set_next b y x;
  let nl = finalize b in
  let eng = Sim.Engine.create nl in
  Sim.Engine.step eng;
  Alcotest.(check int) "x got y" 2 (Bitvec.to_int (Sim.Engine.reg_value eng "x"));
  Alcotest.(check int) "y got x" 1 (Bitvec.to_int (Sim.Engine.reg_value eng "y"))

let test_params () =
  let open Netlist.Builder in
  let b = create "ptest" in
  let base = param b "base" 8 in
  let r = reg b "r" 8 in
  set_next b r Expr.(base +: one 8);
  let nl = finalize b in
  let eng = Sim.Engine.create nl in
  Sim.Engine.set_param eng "base" (bv 8 9);
  Sim.Engine.step eng;
  Alcotest.(check int) "param used" 10
    (Bitvec.to_int (Sim.Engine.reg_value eng "r"))

let test_poke () =
  let eng = Sim.Engine.create (build_counter ()) in
  Sim.Engine.poke_reg eng "count" (bv 8 100);
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.step eng;
  Alcotest.(check int) "poked then stepped" 101
    (Bitvec.to_int (Sim.Engine.reg_value eng "count"))

let test_trace () =
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let tr = Sim.Trace.attach eng [ ("count", Expr.reg rd.Netlist.rd_signal) ] in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 4;
  Alcotest.(check int) "trace length" 4 (Sim.Trace.length tr);
  Alcotest.(check int) "cycle 0 value" 1
    (Bitvec.to_int (Sim.Trace.get tr "count" 0));
  Alcotest.(check int) "cycle 3 value" 4
    (Bitvec.to_int (Sim.Trace.get tr "count" 3));
  let series = List.map Bitvec.to_int (Sim.Trace.series tr "count") in
  Alcotest.(check (list int)) "series" [ 1; 2; 3; 4 ] series

let test_vcd () =
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let path = Filename.temp_file "upec" ".vcd" in
  let oc = open_out path in
  let v =
    Sim.Vcd.attach eng oc [ ("count", Expr.reg rd.Netlist.rd_signal) ]
  in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 3;
  Sim.Vcd.close v;
  close_out oc;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header present" true (contains contents "$date");
  Alcotest.(check bool) "has var decl" true (contains contents "$var wire 8");
  Alcotest.(check bool) "has timesteps" true (contains contents "#3")

let test_vcd_hierarchical_names () =
  (* hierarchical SoC names must come out as well-formed VCD: sanitised
     identifiers, a memory-cell suffix as the standard bit-select token,
     and a proper $timescale declaration *)
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let sig_ = Expr.reg rd.Netlist.rd_signal in
  let path = Filename.temp_file "upec" ".vcd" in
  let oc = open_out path in
  let v =
    Sim.Vcd.attach eng oc ~module_name:"instance_A"
      [
        ("soc.sram0.mem[3]", sig_);
        ("xbar_pub.pub0.arb.last", sig_);
        ("weird name!@#", sig_);
      ]
  in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 2;
  Sim.Vcd.close v;
  close_out oc;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "timescale declared" true
    (contains contents "$timescale 1 ns $end");
  Alcotest.(check bool) "scope named" true
    (contains contents "$scope module instance_A $end");
  (* the memory-cell index becomes a separate bit-select token *)
  Alcotest.(check bool) "bit-select token" true
    (contains contents "soc.sram0.mem [3] $end");
  Alcotest.(check bool) "plain hierarchical name kept" true
    (contains contents "xbar_pub.pub0.arb.last $end");
  (* no raw illegal characters survive in any $var line *)
  Alcotest.(check bool) "illegal chars sanitised" false
    (contains contents "weird name!@#");
  Alcotest.(check bool) "sanitised replacement present" true
    (contains contents "weird_name___ $end")

let test_trace_error_semantics () =
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let tr = Sim.Trace.attach eng [ ("count", Expr.reg rd.Netlist.rd_signal) ] in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 2;
  (* unknown names and out-of-range cycles raise the same exception
     with an identifying message — no bare Not_found anywhere *)
  Alcotest.check_raises "get unknown signal"
    (Invalid_argument "Trace.index_of: unknown signal nope") (fun () ->
      ignore (Sim.Trace.get tr "nope" 0));
  Alcotest.check_raises "series unknown signal"
    (Invalid_argument "Trace.index_of: unknown signal nope") (fun () ->
      ignore (Sim.Trace.series tr "nope"));
  Alcotest.check_raises "cycle past the end"
    (Invalid_argument "Trace.get: cycle out of range") (fun () ->
      ignore (Sim.Trace.get tr "count" 2));
  Alcotest.check_raises "negative cycle"
    (Invalid_argument "Trace.get: cycle out of range") (fun () ->
      ignore (Sim.Trace.get tr "count" (-1)));
  (* and the trace keeps recording correctly after the failed lookups *)
  Sim.Engine.run eng 1;
  Alcotest.(check int) "value after errors" 3
    (Bitvec.to_int (Sim.Trace.get tr "count" 2))

let test_trace_accessor_perf () =
  (* O(1) accessors: random access over a long trace must not rescan
     the row list. 2000 cycles x 2000 random gets was minutes with the
     old list representation; generous bound, but quadratic blows it. *)
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let tr = Sim.Trace.attach eng [ ("count", Expr.reg rd.Netlist.rd_signal) ] in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 2000;
  let t0 = Unix.gettimeofday () in
  for i = 0 to 1999 do
    let cycle = i * 997 mod 2000 in
    ignore (Sim.Trace.get tr "count" cycle)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "length" 2000 (Sim.Trace.length tr);
  Alcotest.(check bool)
    (Printf.sprintf "2000 random gets fast enough (%.3fs)" dt)
    true (dt < 1.0)

let test_vcd_final_timestep () =
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let path = Filename.temp_file "upec" ".vcd" in
  let oc = open_out path in
  let v = Sim.Vcd.attach eng oc [ ("count", Expr.reg rd.Netlist.rd_signal) ] in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 3;
  Sim.Vcd.close v;
  Sim.Vcd.close v (* idempotent *);
  let size_at_close = (Unix.stat path).Unix.st_size in
  (* the hook is dead after close: further steps add nothing *)
  Sim.Engine.run eng 5;
  flush oc;
  close_out oc;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let final_size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "last cycle marker" true (contains contents "#3");
  (* close emits a final timestamp past the last cycle so viewers show
     the last values for a full cycle *)
  Alcotest.(check bool) "final timestamp from close" true
    (contains contents "#4");
  Alcotest.(check int) "no output after close" size_at_close final_size

let test_vcd_wide_dump_perf () =
  (* last-value tracking must not be quadratic in signal count: 400
     signals x 300 cycles was multi-second with the assoc list. *)
  let nl = build_counter () in
  let eng = Sim.Engine.create nl in
  let rd = Netlist.find_reg nl "count" in
  let sig_ = Expr.reg rd.Netlist.rd_signal in
  let signals =
    List.init 400 (fun i -> (Printf.sprintf "sig%d" i, sig_))
  in
  let path = Filename.temp_file "upec" ".vcd" in
  let oc = open_out path in
  let t0 = Unix.gettimeofday () in
  let v = Sim.Vcd.attach eng oc signals in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 300;
  Sim.Vcd.close v;
  let dt = Unix.gettimeofday () -. t0 in
  close_out oc;
  Sys.remove path;
  Alcotest.(check bool)
    (Printf.sprintf "wide dump fast enough (%.3fs)" dt)
    true (dt < 5.0)

(* qcheck: simulator counter matches a functional model *)
let qcheck_counter_model =
  QCheck.Test.make ~count:100 ~name:"counter matches functional model"
    QCheck.(list_of_size Gen.(int_range 1 30) bool)
    (fun enables ->
      let eng = Sim.Engine.create (build_counter ()) in
      let expected = ref 0 in
      List.iter
        (fun en ->
          Sim.Engine.set_input_int eng "enable" (if en then 1 else 0);
          Sim.Engine.step eng;
          if en then expected := (!expected + 1) land 0xff)
        enables;
      Bitvec.to_int (Sim.Engine.reg_value eng "count") = !expected)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "counter" `Quick test_counter_steps;
          Alcotest.test_case "peek output" `Quick test_peek_output;
          Alcotest.test_case "reset values" `Quick test_reset_values;
          Alcotest.test_case "memory write/read" `Quick test_memory_write_read;
          Alcotest.test_case "memory port priority" `Quick
            test_memory_port_priority;
          Alcotest.test_case "two-phase semantics" `Quick
            test_two_phase_semantics;
          Alcotest.test_case "parameters" `Quick test_params;
          Alcotest.test_case "poke" `Quick test_poke;
        ] );
      ( "trace+vcd",
        [
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "trace error semantics" `Quick
            test_trace_error_semantics;
          Alcotest.test_case "trace accessor perf" `Quick
            test_trace_accessor_perf;
          Alcotest.test_case "vcd dump" `Quick test_vcd;
          Alcotest.test_case "vcd final timestep + close" `Quick
            test_vcd_final_timestep;
          Alcotest.test_case "vcd wide dump perf" `Quick
            test_vcd_wide_dump_perf;
          Alcotest.test_case "vcd hierarchical names" `Quick
            test_vcd_hierarchical_names;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_counter_model ]);
    ]
