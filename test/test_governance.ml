(* Resource governance and crash-safe orchestration: checkpoint
   (de)serialization properties, interrupted-then-resumed runs reaching
   the verdict of an uninterrupted run across job counts, config-hash
   refusal, and graceful degradation under SAT budgets. *)

module Ck = Upec.Checkpoint

let spec_of variant =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  Upec.Spec.make soc variant

let verdict_str r = Format.asprintf "%a" Upec.Report.pp_verdict r.Upec.Report.verdict

(* ---- checkpoint format ---- *)

let gen_checkpoint =
  QCheck.Gen.(
    let raw_string =
      (* arbitrary bytes: names and reasons must survive spaces,
         newlines, '%' and the '@' used by Alg2 pair entries *)
      string_size ~gen:char (int_range 0 16)
    in
    let* alg = oneofl [ Ck.Alg1; Ck.Alg2 ] in
    let* variant = raw_string in
    let* hash = raw_string in
    let* iter = int_range 0 1000 in
    let* k = int_range 0 16 in
    let* frames =
      array_size (int_range 1 5) (list_size (int_range 0 8) raw_string)
    in
    let* unknown = list_size (int_range 0 6) (pair raw_string raw_string) in
    return
      {
        Ck.ck_alg = alg;
        ck_variant = variant;
        ck_config_hash = hash;
        ck_iter = iter;
        ck_k = k;
        ck_frames = frames;
        ck_unknown = unknown;
      })

let qcheck_roundtrip =
  QCheck.Test.make ~count:300 ~name:"checkpoint to_string/of_string roundtrip"
    (QCheck.make ~print:(fun ck -> Format.asprintf "%a" Ck.pp ck) gen_checkpoint)
    (fun ck ->
      match Ck.of_string (Ck.to_string ck) with
      | Ok ck' -> ck' = ck
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m)

let sample_ck () =
  {
    Ck.ck_alg = Ck.Alg2;
    ck_variant = "secure";
    ck_config_hash = "deadbeef";
    ck_iter = 3;
    ck_k = 2;
    ck_frames = [| [ "a"; "b c" ]; []; [ "weird%name@1" ] |];
    ck_unknown = [ ("x@2", "conflict budget exhausted") ];
  }

let test_save_load_roundtrip () =
  let path = Filename.temp_file "governance" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let ck = sample_ck () in
      Ck.save path ck;
      match Ck.load path with
      | Ok ck' -> Alcotest.(check bool) "load = saved" true (ck' = ck)
      | Error m -> Alcotest.fail ("load failed: " ^ m))

let test_rejects_truncation () =
  let text = Ck.to_string (sample_ck ()) in
  (* drop the trailing "end\n" marker: a torn write must be refused *)
  let cut = String.sub text 0 (String.length text - 4) in
  (match Ck.of_string cut with
  | Ok _ -> Alcotest.fail "truncated checkpoint accepted"
  | Error m ->
      Alcotest.(check bool)
        "mentions truncation" true
        (String.length m > 0));
  match Ck.of_string "not a checkpoint at all\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_load_missing_is_error () =
  match Ck.load "/nonexistent/governance.ck" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

(* ---- config-hash and algorithm-kind refusal ---- *)

let test_hash_mismatch_refused () =
  (* checkpoint fingerprinted for the secure variant must be refused by
     a vulnerable-variant run instead of silently misread *)
  let ck =
    {
      Ck.ck_alg = Ck.Alg1;
      ck_variant = "secure";
      ck_config_hash = Ck.config_hash ~alg:Ck.Alg1 (spec_of Upec.Spec.Secure);
      ck_iter = 2;
      ck_k = 1;
      ck_frames = [| [] |];
      ck_unknown = [];
    }
  in
  match Upec.Alg1.run ~jobs:1 ~resume:ck (spec_of Upec.Spec.Vulnerable) with
  | _ -> Alcotest.fail "hash mismatch not refused"
  | exception Invalid_argument _ -> ()

let test_alg_kind_refused () =
  let spec = spec_of Upec.Spec.Secure in
  let ck =
    {
      Ck.ck_alg = Ck.Alg1;
      ck_variant = "secure";
      ck_config_hash = Ck.config_hash ~alg:Ck.Alg1 spec;
      ck_iter = 2;
      ck_k = 1;
      ck_frames = [| [] |];
      ck_unknown = [];
    }
  in
  match Upec.Alg2.run ~jobs:1 ~resume:ck spec with
  | _ -> Alcotest.fail "Alg2 accepted an Alg1 checkpoint"
  | exception Invalid_argument _ -> ()

(* ---- interrupt + resume: identical verdict ---- *)

let with_ck_file f =
  let path = Filename.temp_file "governance" ".ck" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* [should_stop] fires as soon as the first checkpoint has been
   published, i.e. from iteration 2's first solve onwards — a
   deterministic stand-in for SIGTERM that needs no wall-clock timing. *)
let stop_after_first_checkpoint path () = Sys.file_exists path

let test_alg1_interrupt_resume ~stop_jobs ~resume_jobs ?(certify = false) () =
  let baseline =
    Upec.Alg1.run ~jobs:resume_jobs ~certify (spec_of Upec.Spec.Secure)
  in
  with_ck_file (fun path ->
      let interrupted =
        Upec.Alg1.run ~jobs:stop_jobs ~certify ~checkpoint_file:path
          ~should_stop:(stop_after_first_checkpoint path)
          (spec_of Upec.Spec.Secure)
      in
      (match interrupted.Upec.Report.verdict with
      | Upec.Report.Inconclusive "interrupted" -> ()
      | v ->
          Alcotest.failf "expected an interrupted run, got %s"
            (Format.asprintf "%a" Upec.Report.pp_verdict v));
      let ck =
        match Ck.load path with
        | Ok ck -> ck
        | Error m -> Alcotest.fail ("checkpoint unreadable: " ^ m)
      in
      let resumed =
        Upec.Alg1.run ~jobs:resume_jobs ~certify ~resume:ck
          (spec_of Upec.Spec.Secure)
      in
      Alcotest.(check string)
        "resumed verdict = uninterrupted verdict" (verdict_str baseline)
        (verdict_str resumed);
      Alcotest.(check bool)
        "resume recorded" true
        (resumed.Upec.Report.resumed_from <> None))

let test_conclude_interrupt_resume () =
  let baseline = Upec.Alg2.conclude ~jobs:1 (spec_of Upec.Spec.Secure) in
  with_ck_file (fun path ->
      let interrupted =
        Upec.Alg2.conclude ~jobs:4 ~checkpoint_file:path
          ~should_stop:(stop_after_first_checkpoint path)
          (spec_of Upec.Spec.Secure)
      in
      (match interrupted.Upec.Report.verdict with
      | Upec.Report.Inconclusive "interrupted" -> ()
      | _ -> Alcotest.fail "expected an interrupted run");
      let ck =
        match Ck.load path with
        | Ok ck -> ck
        | Error m -> Alcotest.fail ("checkpoint unreadable: " ^ m)
      in
      (* resume on a different job count: the checkpoint is a semantic
         frontier, not a schedule, so the verdict must not change *)
      let resumed = Upec.Alg2.conclude ~jobs:1 ~resume:ck (spec_of Upec.Spec.Secure) in
      Alcotest.(check string)
        "resumed verdict = uninterrupted verdict" (verdict_str baseline)
        (verdict_str resumed))

(* ---- budgets: graceful degradation ---- *)

let test_budget_degrades_not_poisons () =
  (* a starved run on the secure design must end Inconclusive with the
     starved checks accounted for — never Vulnerable (soundness) and
     never Secure (honesty), and it must terminate *)
  let r =
    Upec.Alg1.run ~jobs:2
      ~budget:(Satsolver.Solver.conflict_budget 5)
      ~budget_retries:0
      (spec_of Upec.Spec.Secure)
  in
  Alcotest.(check bool) "not vulnerable" false (Upec.Report.is_vulnerable r);
  Alcotest.(check bool) "not secure" false (Upec.Report.is_secure r);
  Alcotest.(check bool) "unknowns accounted" true (r.Upec.Report.unknowns <> [])

let test_budget_generous_still_secure () =
  (* with escalating retries the same run converges to the unbudgeted
     verdict: budgets bound single calls, not the result *)
  let r =
    Upec.Alg1.run ~jobs:2
      ~budget:(Satsolver.Solver.conflict_budget 1_000)
      ~budget_retries:2
      (spec_of Upec.Spec.Secure)
  in
  Alcotest.(check bool) "secure" true (Upec.Report.is_secure r);
  Alcotest.(check (list (pair string string)))
    "no unknowns" [] r.Upec.Report.unknowns

let test_budget_vulnerable_never_secure () =
  let r =
    Upec.Alg1.run ~jobs:2
      ~budget:(Satsolver.Solver.conflict_budget 50)
      ~budget_retries:1
      (spec_of Upec.Spec.Vulnerable)
  in
  Alcotest.(check bool)
    "a starved run never claims security" false
    (Upec.Report.is_secure r)

let test_budget_conclude_terminates () =
  let r =
    Upec.Alg2.conclude ~jobs:2
      ~budget:(Satsolver.Solver.conflict_budget 5)
      ~budget_retries:0
      (spec_of Upec.Spec.Secure)
  in
  Alcotest.(check bool) "not vulnerable" false (Upec.Report.is_vulnerable r);
  Alcotest.(check bool) "not secure" false (Upec.Report.is_secure r)

let () =
  Alcotest.run "governance"
    [
      ( "checkpoint",
        [
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "rejects truncation" `Quick test_rejects_truncation;
          Alcotest.test_case "load of missing file is Error" `Quick
            test_load_missing_is_error;
          Alcotest.test_case "config-hash mismatch refused" `Slow
            test_hash_mismatch_refused;
          Alcotest.test_case "algorithm kind refused" `Slow
            test_alg_kind_refused;
        ] );
      ( "interrupt-resume",
        [
          Alcotest.test_case "alg1 jobs 1 -> 1" `Slow
            (test_alg1_interrupt_resume ~stop_jobs:1 ~resume_jobs:1);
          Alcotest.test_case "alg1 jobs 4 -> 4" `Slow
            (test_alg1_interrupt_resume ~stop_jobs:4 ~resume_jobs:4);
          Alcotest.test_case "alg1 jobs 4 -> 1" `Slow
            (test_alg1_interrupt_resume ~stop_jobs:4 ~resume_jobs:1);
          Alcotest.test_case "alg1 certified" `Slow
            (test_alg1_interrupt_resume ~stop_jobs:2 ~resume_jobs:2
               ~certify:true);
          Alcotest.test_case "alg2 conclude jobs 4 -> 1" `Slow
            test_conclude_interrupt_resume;
        ] );
      ( "budget",
        [
          Alcotest.test_case "starved run degrades, never poisons" `Slow
            test_budget_degrades_not_poisons;
          Alcotest.test_case "generous budget converges to secure" `Slow
            test_budget_generous_still_secure;
          Alcotest.test_case "starved vulnerable never secure" `Slow
            test_budget_vulnerable_never_secure;
          Alcotest.test_case "starved conclude terminates" `Slow
            test_budget_conclude_terminates;
        ] );
    ]
