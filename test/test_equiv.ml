(* Equivalence suite for the problem-reduction pipeline.

   The reduction layer (cone-of-influence + obligation dropping for
   witness-free solves) and the incremental solver sessions are pure
   accelerations: with [simp] off the verdict — including the
   counterexample waveform — must be bit-identical, and with
   [incremental] off the verdict class must agree (witness sets of
   monolithic refinement may differ; both are correct). Exercised on
   the two example SoCs (examples/busted_dma_timer.ml: the Fig. 1
   DMA + timer platform = formal netlist with the full persistence
   model; examples/busted_hwpe_memory.ml: the Sec. 4.1 HWPE + memory
   variant = DMA disabled, memory-only persistence), including
   certified and interrupted-then-resumed runs. Also the shape and
   round-trip checks of the schema-3 JSON report. *)

open Rtl
module O = Upec.Options

let spec_of ?(cfg = Soc.Config.formal_tiny) ?(pers = Upec.Spec.Full_pers)
    variant =
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  Upec.Spec.make ~pers_model:pers soc variant

(* the Fig. 1 DMA + timer example platform *)
let dma_timer variant = spec_of variant

(* the Sec. 4.1 HWPE + memory example variant *)
let hwpe_memory () =
  spec_of
    ~cfg:{ Soc.Config.formal_tiny with Soc.Config.with_dma = false }
    ~pers:Upec.Spec.Memory_only Upec.Spec.Vulnerable

(* ---- bit-exact run representation (everything but timings) ---- *)

let names s =
  String.concat ","
    (List.map Structural.svar_name (Structural.Svar_set.elements s))

let repr_verdict (r : Upec.Report.run) =
  match r.Upec.Report.verdict with
  | Upec.Report.Secure { s_final } -> "secure " ^ names s_final
  | Upec.Report.Vulnerable { s_cex; cex } ->
      "vulnerable " ^ names s_cex ^ "\n"
      ^ Format.asprintf "%a" Ipc.Cex.pp_full cex
  | Upec.Report.Inconclusive m -> "inconclusive " ^ m

let repr_run (r : Upec.Report.run) =
  let step (s : Upec.Report.step) =
    Printf.sprintf "iter=%d k=%d |S|=%d cex={%s} pers={%s} unknown={%s}"
      s.Upec.Report.st_iter s.Upec.Report.st_k s.Upec.Report.st_s_size
      (names s.Upec.Report.st_cex)
      (names s.Upec.Report.st_pers_hit)
      (names s.Upec.Report.st_unknown)
  in
  String.concat "\n"
    ((r.Upec.Report.procedure :: repr_verdict r
     :: List.map step r.Upec.Report.steps)
    @ List.map (fun (n, why) -> n ^ ":" ^ why) r.Upec.Report.unknowns)

let check_identical what on off =
  Alcotest.(check string) what (repr_run off) (repr_run on)

(* ---- simp on/off: bit-identical runs ---- *)

let test_alg1_simp_equiv () =
  let run ?jobs simp =
    Upec.Alg1.run_with
      { O.default with O.simp; jobs }
      (dma_timer Upec.Spec.Vulnerable)
  in
  check_identical "alg1 monolithic" (run true) (run false);
  check_identical "alg1 per-svar" (run ~jobs:2 true) (run ~jobs:2 false)

let test_alg2_simp_equiv () =
  let run ?jobs simp =
    fst (Upec.Alg2.run_with { O.default with O.simp; jobs } (hwpe_memory ()))
  in
  check_identical "alg2 monolithic" (run true) (run false);
  check_identical "alg2 per-svar" (run ~jobs:2 true) (run ~jobs:2 false)

let test_certified_simp_equiv () =
  (* certification routes witness-free solves through the reduced
     snapshot: the DRUP proof is checked against the reduced CNF, so a
     reduction bug fails this test twice over (verdict or certificate) *)
  let run simp =
    Upec.Alg1.run_with
      { O.default with O.simp; jobs = Some 2; certify = true }
      (dma_timer Upec.Spec.Vulnerable)
  in
  let on = run true and off = run false in
  check_identical "alg1 per-svar certified" on off;
  List.iter
    (fun (r : Upec.Report.run) ->
      match r.Upec.Report.cert with
      | Some c ->
          Alcotest.(check bool)
            "unsat certificates checked" true
            (c.Upec.Report.ct_totals.Cert.Proof.unsat_checked > 0)
      | None -> Alcotest.fail "certified run lost its certificate totals")
    [ on; off ]

let repr_outcome = function
  | Upec.Alg2.Hold { s_final; k } ->
      Printf.sprintf "hold k=%d {%s}" k (names s_final)
  | Upec.Alg2.Found_vulnerable -> "vulnerable"
  | Upec.Alg2.Gave_up -> "gave up"

let test_bmc_reset_simp_equiv () =
  let run simp =
    Upec.Alg2.run_with
      { O.default with O.simp; reset_start = true; max_k = 2 }
      (dma_timer Upec.Spec.Vulnerable)
  in
  let r_on, o_on = run true and r_off, o_off = run false in
  Alcotest.(check string) "same outcome" (repr_outcome o_off)
    (repr_outcome o_on);
  check_identical "bmc from reset" r_on r_off

(* ---- interrupt + resume with reduction enabled ---- *)

let test_resume_simp_equiv () =
  let o = { O.default with O.jobs = Some 2 } in
  let baseline = Upec.Alg1.run_with o (dma_timer Upec.Spec.Secure) in
  let path = Filename.temp_file "equiv" ".ck" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let interrupted =
        Upec.Alg1.run_with
          {
            o with
            O.checkpoint_file = Some path;
            should_stop = Some (fun () -> Sys.file_exists path);
          }
          (dma_timer Upec.Spec.Secure)
      in
      (match interrupted.Upec.Report.verdict with
      | Upec.Report.Inconclusive "interrupted" -> ()
      | v ->
          Alcotest.failf "expected an interrupted run, got %s"
            (Format.asprintf "%a" Upec.Report.pp_verdict v));
      let ck =
        match Upec.Checkpoint.load path with
        | Ok ck -> ck
        | Error m -> Alcotest.fail ("checkpoint unreadable: " ^ m)
      in
      let resumed =
        Upec.Alg1.run_with ~resume:ck o (dma_timer Upec.Spec.Secure)
      in
      Alcotest.(check string)
        "resumed verdict = uninterrupted verdict" (repr_verdict baseline)
        (repr_verdict resumed))

(* ---- incremental sessions vs fresh solvers: same verdict class ---- *)

let test_incremental_vs_fresh () =
  let alg1 incremental =
    Upec.Alg1.run_with
      { O.default with O.incremental }
      (dma_timer Upec.Spec.Vulnerable)
  in
  Alcotest.(check bool) "alg1 both vulnerable" true
    (Upec.Report.is_vulnerable (alg1 true)
    && Upec.Report.is_vulnerable (alg1 false));
  let alg2 incremental =
    fst (Upec.Alg2.run_with { O.default with O.incremental } (hwpe_memory ()))
  in
  Alcotest.(check bool) "alg2 both vulnerable" true
    (Upec.Report.is_vulnerable (alg2 true)
    && Upec.Report.is_vulnerable (alg2 false))

(* ---- schema-3 JSON report ---- *)

let test_json_roundtrip () =
  let r =
    fst
      (Upec.Alg2.run_with { O.default with O.jobs = Some 2 } (hwpe_memory ()))
  in
  let j = Upec.Report.to_json r in
  let j' = Upec.Json.of_string (Upec.Json.to_string j) in
  Alcotest.(check bool) "print/parse round-trip" true (j = j');
  let m k = Upec.Json.member k j' in
  let int_of what v =
    match Upec.Json.to_int v with
    | Some i -> i
    | None -> Alcotest.failf "%s: not an integer" what
  in
  Alcotest.(check int) "schema" Upec.Report.schema_version
    (int_of "schema" (m "schema"));
  Alcotest.(check int)
    "schema accepted by strict parsing" Upec.Report.schema_version
    (Upec.Json.schema_version ~supported:[ 2; 3 ] j');
  Alcotest.(check (option string))
    "verdict kind" (Some "vulnerable")
    Upec.Json.(to_str (member "kind" (m "verdict")));
  Alcotest.(check int)
    "steps = iterations" (Upec.Report.iterations r)
    (match Upec.Json.to_list (m "steps") with
    | Some l -> List.length l
    | None -> -1);
  (* the options the run was configured with are echoed *)
  Alcotest.(check (option bool))
    "options.simp echoed" (Some true)
    Upec.Json.(to_bool (member "simp" (m "options")));
  Alcotest.(check (option int))
    "options.jobs echoed" (Some 2)
    Upec.Json.(to_int (member "jobs" (m "options")));
  (* per-svar pair checks are witness-free, so reduction fired *)
  let simp = m "simp" in
  Alcotest.(check bool)
    "reduced solves recorded" true
    (int_of "reduced_solves" (Upec.Json.member "reduced_solves" simp) > 0);
  Alcotest.(check bool)
    "reduced <= full" true
    (int_of "reduced_clauses" (Upec.Json.member "reduced_clauses" simp)
    <= int_of "full_clauses" (Upec.Json.member "full_clauses" simp))

(* parsers accept both report generations; anything else is refused
   loudly rather than misread *)
let test_schema_versions () =
  let v2 = Upec.Json.Obj [ ("schema", Upec.Json.Int 2) ] in
  Alcotest.(check int)
    "schema-2 artefacts still accepted" 2
    (Upec.Json.schema_version ~supported:[ 2; 3 ] v2);
  let v9 = Upec.Json.Obj [ ("schema", Upec.Json.Int 9) ] in
  (match Upec.Json.schema_version ~supported:[ 2; 3 ] v9 with
  | _ -> Alcotest.fail "unsupported schema version accepted"
  | exception Upec.Json.Parse_error _ -> ());
  match Upec.Json.schema_version ~supported:[ 2; 3 ] (Upec.Json.Obj []) with
  | _ -> Alcotest.fail "missing schema member accepted"
  | exception Upec.Json.Parse_error _ -> ()

let () =
  Alcotest.run "equiv"
    [
      ( "simp",
        [
          Alcotest.test_case "alg1 on/off bit-identical" `Quick
            test_alg1_simp_equiv;
          Alcotest.test_case "alg2 on/off bit-identical" `Quick
            test_alg2_simp_equiv;
          Alcotest.test_case "certified on/off bit-identical" `Slow
            test_certified_simp_equiv;
          Alcotest.test_case "bmc-from-reset on/off bit-identical" `Slow
            test_bmc_reset_simp_equiv;
          Alcotest.test_case "interrupt+resume verdict preserved" `Slow
            test_resume_simp_equiv;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "incremental vs fresh verdict class" `Quick
            test_incremental_vs_fresh;
        ] );
      ( "json",
        [ Alcotest.test_case "schema-3 round-trip and shape" `Quick
            test_json_roundtrip;
          Alcotest.test_case "schema versions accepted/rejected" `Quick
            test_schema_versions;
        ] );
    ]
