(* Benchmark harness: regenerates every quantitative artefact of the
   paper's evaluation (experiments E1..E9 of DESIGN.md), the ablations
   (A1..A5), and a set of Bechamel micro-benchmarks for the substrate
   kernels.

   Run everything:        dune exec bench/main.exe
   Select experiments:    dune exec bench/main.exe -- E2 E3 A4
   Run experiments concurrently on 4 domains:      ... -- -j 4
   Parallelise inside one experiment's proofs:     ... -- E2 -j 4
   Quick smoke run (E1+E2, writes BENCH_smoke.json):  ... -- smoke
   Include the slow k=2 unrolled secure proof:  ... -- full

   Each experiment writes to its own buffer, so concurrent runs print
   exactly the same report as sequential ones, in selection order. With
   several experiments selected, -j runs whole experiments concurrently;
   with exactly one, -j is handed to the provers (per-svar strategy),
   which keeps the two levels of parallelism from oversubscribing. *)

type ctx = { fmt : Format.formatter; jobs : int option }

let section ctx title =
  Format.fprintf ctx.fmt
    "@.============================================================@.";
  Format.fprintf ctx.fmt "%s@." title;
  Format.fprintf ctx.fmt
    "============================================================@."

let paper_note ctx text = Format.fprintf ctx.fmt "paper: %s@.@." text

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let formal_soc ?(cfg = Soc.Config.formal_default) () =
  Soc.Builder.build cfg Soc.Builder.Formal

let spec ?cfg ?(pers = Upec.Spec.Full_pers) variant =
  Upec.Spec.make ~pers_model:pers (formal_soc ?cfg ()) variant

(* ---------------------------------------------------------------- *)
(* E1: Fig. 1 — the DMA + timer attack walkthrough                   *)
(* ---------------------------------------------------------------- *)

let e1 ctx =
  section ctx
    "E1 (Fig. 1): DMA + timer attack — victim accesses vs timer reading";
  paper_note ctx
    "the attacker deduces the victim's memory access count from the timer \
     state after a DMA transfer (illustrative walkthrough in Sec. 2.2)";
  Format.fprintf ctx.fmt "victim accesses | timer at retrieval | total cycles@.";
  let readings =
    Scenarios.Attacks.dma_timer_of
      (Scenarios.Scenario.default_for Scenarios.Scenario.Busted_timer)
      [ 0; 2; 4; 6; 8; 10 ]
  in
  List.iter
    (fun r ->
      Format.fprintf ctx.fmt "%15d | %18d | %12d@."
        r.Scenarios.Attacks.dt_accesses r.Scenarios.Attacks.dt_timer
        r.Scenarios.Attacks.dt_cycles)
    readings;
  let distinct =
    List.length
      (List.sort_uniq compare
         (List.map (fun r -> r.Scenarios.Attacks.dt_timer) readings))
  in
  Format.fprintf ctx.fmt "distinct readings: %d/%d -> channel %s@." distinct
    (List.length readings)
    (if distinct > 1 then "EXISTS" else "not observed")

(* ---------------------------------------------------------------- *)
(* E2: Sec. 4.1 — vulnerability detection                            *)
(* ---------------------------------------------------------------- *)

let print_report ctx r = Format.fprintf ctx.fmt "%a@." Upec.Report.pp r

(* Problem-reduction accounting aggregated across the smoke proofs, for
   the BENCH_smoke.json artefact. *)
let smoke_simp : Simp.reduction option ref = ref None
let smoke_simp_mu = Mutex.create ()

let record_simp r =
  match r.Upec.Report.simp with
  | None -> ()
  | Some red ->
      Mutex.lock smoke_simp_mu;
      (smoke_simp :=
         match !smoke_simp with
         | None -> Some red
         | Some a -> Some (Simp.merge_reduction a red));
      Mutex.unlock smoke_simp_mu

let e2 ctx =
  section ctx "E2 (Sec. 4.1): UPEC-SSC detects the vulnerability";
  paper_note ctx
    "several counterexamples on Pulpissimo; the highlighted one shows the \
     HWPE + memory variant, found with Alg. 2 unrolled to observe the \
     delayed HWPE access; iteration runtimes below one minute";
  Format.fprintf ctx.fmt "--- full S_pers, Alg. 1 (first persistent hit) ---@.";
  let o = { Upec.Options.default with Upec.Options.jobs = ctx.jobs } in
  let r1 = Upec.Alg1.run_with o (spec Upec.Spec.Vulnerable) in
  print_report ctx r1;
  record_simp r1;
  Format.fprintf ctx.fmt
    "@.--- HWPE + memory variant: footprint-only retrieval (no timer), DMA \
     disabled, Alg. 2 (per-svar) ---@.";
  (* per-svar (verdicts and reports are identical for every job count):
     its witness-free pair checks are the ones the problem-reduction
     pipeline accelerates, recorded in the smoke artefact *)
  (* portfolio 2 routes the witness-free pair checks through the
     snapshot path, where the reduced CNF is rebuilt from the live
     cone — frame-0 equivalence, environment, and the one armed
     obligation under test; every other pair's comparator cone is
     dropped. The before -> after sizes land in the smoke artefact. *)
  let o2 =
    {
      o with
      Upec.Options.jobs =
        (match ctx.jobs with Some j -> Some j | None -> Some 2);
      portfolio = 2;
    }
  in
  let cfg = { Soc.Config.formal_default with Soc.Config.with_dma = false } in
  let r2, _ =
    Upec.Alg2.run_with o2
      (spec ~cfg ~pers:Upec.Spec.Memory_only Upec.Spec.Vulnerable)
  in
  print_report ctx r2;
  record_simp r2;
  let max_iter_time =
    List.fold_left
      (fun acc s -> max acc s.Upec.Report.st_seconds)
      0. r1.Upec.Report.steps
  in
  Format.fprintf ctx.fmt
    "@.shape check: vulnerable in both runs; slowest proof iteration %.1fs \
     (paper: < 60s)@."
    max_iter_time

(* ---------------------------------------------------------------- *)
(* E3: Sec. 4.2 — the countermeasure proof                           *)
(* ---------------------------------------------------------------- *)

let e3 ~full ctx =
  section ctx "E3 (Sec. 4.2): countermeasure proven secure";
  paper_note ctx
    "after the fix, Alg. 1 proves the SoC secure in 3 iterations; iteration \
     runtimes between 58 s and 2 h 52 min";
  Format.fprintf ctx.fmt "--- Alg. 1 to fixed point + induction ---@.";
  let r = Upec.Alg1.run ?jobs:ctx.jobs (spec Upec.Spec.Secure) in
  print_report ctx r;
  let times = List.map (fun s -> s.Upec.Report.st_seconds) r.Upec.Report.steps in
  Format.fprintf ctx.fmt
    "@.shape check: SECURE; %d iterations (paper: 3); iteration times \
     %.2fs..%.2fs — the final inductive check dominates, mirroring the \
     paper's spread@."
    (Upec.Report.iterations r)
    (List.fold_left min infinity times)
    (List.fold_left max 0. times);
  if full then begin
    Format.fprintf ctx.fmt
      "@.--- Alg. 2 (unrolled) + induction, k up to 2 ---@.";
    let r2 =
      Upec.Alg2.conclude ~max_k:4 ?jobs:ctx.jobs (spec Upec.Spec.Secure)
    in
    print_report ctx r2
  end
  else
    Format.fprintf ctx.fmt
      "@.(run with 'full' to include the k=2 unrolled secure proof, ~5 min)@."

(* ---------------------------------------------------------------- *)
(* E4: Fig. 2 — property time-window reduction                       *)
(* ---------------------------------------------------------------- *)

let e4 ctx =
  section ctx "E4 (Fig. 2): property window reduction (Obs. 1 + Obs. 2)";
  paper_note ctx
    "describing the whole attack needs hundreds/thousands of cycles; Obs. 1 \
     drops the preparation phase, Obs. 2 ends the window at the first \
     persistent-state divergence: two cycles suffice";
  (* (a) how long is the actual attack in simulation? *)
  let readings =
    Scenarios.Attacks.dma_timer_of
      (Scenarios.Scenario.default_for Scenarios.Scenario.Busted_timer)
      [ 4 ]
  in
  let attack_cycles =
    match readings with r :: _ -> r.Scenarios.Attacks.dt_cycles | [] -> 0
  in
  Format.fprintf ctx.fmt
    "measured end-to-end attack length (E1 firmware): %d cycles@."
    attack_cycles;
  Format.fprintf ctx.fmt "UPEC-SSC property window (Fig. 3): 2 cycles@.@.";
  (* (b) the cost of longer windows: size and solve time of the first
     check at k = 1..4 *)
  Format.fprintf ctx.fmt
    "window k | AIG and-gates | first-check time (vulnerable, Alg. 2 window)@.";
  List.iter
    (fun k ->
      let s = spec Upec.Spec.Vulnerable in
      let eng =
        Ipc.Engine.create ~two_instance:true
          s.Upec.Spec.soc.Soc.Builder.netlist
      in
      let (), dt =
        time (fun () ->
            Ipc.Engine.ensure_frames eng k;
            Upec.Macros.assume_env eng s ~frames:k;
            for f = 0 to k do
              Upec.Macros.primary_input_constraints eng s ~frame:f;
              if f <= 1 then Upec.Macros.victim_task_executing eng s ~frame:f
              else Upec.Macros.victim_port_equal eng s ~frame:f
            done;
            Upec.Macros.state_equivalence_assume eng s ~frame:0
              (Upec.Spec.s_neg_victim s);
            let goal =
              Upec.Macros.state_equivalence_goal eng s ~frame:k
                (Upec.Spec.s_neg_victim s)
            in
            ignore (Ipc.Engine.check eng goal))
      in
      Format.fprintf ctx.fmt "%8d | %13d | %6.2fs@." k
        (Aig.num_ands (Ipc.Engine.graph eng))
        dt)
    [ 1; 2; 3; 4 ];
  Format.fprintf ctx.fmt
    "=> cost grows with the window; the 2-cycle property keeps every check \
     tractable while the symbolic start covers all longer histories@."

(* ---------------------------------------------------------------- *)
(* E5: scalability sweep                                             *)
(* ---------------------------------------------------------------- *)

let e5 ctx =
  section ctx "E5: scalability with SoC size";
  paper_note ctx
    "the method scales to an SoC of realistic size (>5M state bits on \
     Pulpissimo with OneSpin); here: state bits vs check time on our stack";
  Format.fprintf ctx.fmt
    "bank depth | state bits | state vars | iter-1 check | secure proof@.";
  let rec log2_up n = if n <= 1 then 0 else 1 + log2_up ((n + 1) / 2) in
  List.iter
    (fun depth ->
      let cfg =
        {
          Soc.Config.formal_default with
          Soc.Config.pub_depth = depth;
          priv_depth = depth;
          addr_width = max 8 (2 + log2_up (2 * depth));
        }
      in
      let s = spec ~cfg Upec.Spec.Vulnerable in
      let nl = s.Upec.Spec.soc.Soc.Builder.netlist in
      let r1 = Upec.Alg1.run ~max_iterations:1 ?jobs:ctx.jobs s in
      let iter1 =
        match r1.Upec.Report.steps with
        | st :: _ -> st.Upec.Report.st_seconds
        | [] -> nan
      in
      let secure_time =
        if depth <= 8 then begin
          let r = Upec.Alg1.run ?jobs:ctx.jobs (spec ~cfg Upec.Spec.Secure) in
          Format.asprintf "%8.2fs" r.Upec.Report.total_seconds
        end
        else "   (skip)"
      in
      Format.fprintf ctx.fmt "%10d | %10d | %10d | %11.2fs | %s@." depth
        (Rtl.Netlist.state_bits nl)
        (Rtl.Structural.Svar_set.cardinal (Rtl.Structural.all_svars nl))
        iter1 secure_time)
    [ 4; 8; 16; 32; 64 ]

(* ---------------------------------------------------------------- *)
(* E6: IFT baseline comparison                                       *)
(* ---------------------------------------------------------------- *)

let e6 ctx =
  section ctx "E6 (Sec. 5): IFT baseline vs UPEC-SSC";
  paper_note ctx
    "the paper argues IFT cannot practically provide exhaustive SoC-wide \
     guarantees for timing channels; we quantify: verdicts and runtimes of \
     a CellIFT-style taint analysis vs UPEC-SSC on both SoC variants";
  Format.fprintf ctx.fmt
    "variant    | IFT verdict                  | IFT time | UPEC verdict | \
     UPEC time@.";
  List.iter
    (fun (label, variant) ->
      let s = spec variant in
      let ift_verdict, ift_time = Ift.Formal.analyze ~max_k:2 s in
      let upec_report = Upec.Alg1.run ?jobs:ctx.jobs s in
      let ift_str =
        match ift_verdict with
        | Ift.Formal.Flow { k; tainted } ->
            Printf.sprintf "ALARM k=%d (%d pers tainted)" k
              (List.length tainted)
        | Ift.Formal.No_flow { k } -> Printf.sprintf "no flow (k<=%d)" k
      in
      let upec_str =
        if Upec.Report.is_vulnerable upec_report then "VULNERABLE"
        else if Upec.Report.is_secure upec_report then "SECURE"
        else "INCONCLUSIVE"
      in
      Format.fprintf ctx.fmt "%-10s | %-28s | %7.2fs | %-12s | %8.2fs@." label
        ift_str ift_time upec_str upec_report.Upec.Report.total_seconds)
    [ ("baseline", Upec.Spec.Vulnerable); ("secured", Upec.Spec.Secure) ];
  Format.fprintf ctx.fmt
    "=> IFT alarms on both variants (false positive on the secured SoC): \
     the taint abstraction smears through arbitration. UPEC-SSC \
     distinguishes them.@."

(* ---------------------------------------------------------------- *)
(* E7: HWPE + memory attack (no timer)                               *)
(* ---------------------------------------------------------------- *)

let e7 ctx =
  section ctx
    "E7 (Sec. 4.1): accelerator + memory attack — no timer involved";
  paper_note ctx
    "the detected variant lets an attacker open a timing channel without a \
     timer, undermining timer-denial countermeasures";
  Format.fprintf ctx.fmt
    "victim accesses | zero cells above the HWPE frontier@.";
  let readings =
    Scenarios.Attacks.hwpe_memory_of
      (Scenarios.Scenario.default_for Scenarios.Scenario.Hwpe_progressive)
      [ 0; 32; 64; 96; 128 ]
  in
  List.iter
    (fun r ->
      Format.fprintf ctx.fmt "%15d | %34d@." r.Scenarios.Attacks.hw_accesses
        r.Scenarios.Attacks.hw_zero_cells)
    readings;
  let distinct =
    List.length
      (List.sort_uniq compare
         (List.map (fun r -> r.Scenarios.Attacks.hw_zero_cells) readings))
  in
  Format.fprintf ctx.fmt "distinct readings: %d/%d -> footprint channel %s@."
    distinct
    (List.length readings)
    (if distinct > 1 then "EXISTS" else "not observed")

(* ---------------------------------------------------------------- *)
(* E8 (extension): a less conservative countermeasure                *)
(* ---------------------------------------------------------------- *)

let e8 ctx =
  section ctx
    "E8 (extension, Sec. 6 future work): contention-free TDMA interconnect";
  paper_note ctx
    "the conclusion sketches a UPEC-SSC-driven methodology towards less \
     conservative countermeasures; here is one: replace the round-robin \
     arbiters by time-division arbiters, making grant timing independent \
     of other masters' traffic. No private-memory remapping needed.";
  Format.fprintf ctx.fmt
    "arbiter     | policy assumptions        | UPEC-SSC verdict@.";
  List.iter
    (fun (label, arb, variant) ->
      let cfg = { Soc.Config.formal_default with Soc.Config.arbiter = arb } in
      let r = Upec.Alg1.run ?jobs:ctx.jobs (spec ~cfg variant) in
      Format.fprintf ctx.fmt "%-11s | %-25s | %s (%d iters, %.1fs)@." label
        (match variant with
        | Upec.Spec.Vulnerable -> "threat model only"
        | Upec.Spec.Secure -> "+ Sec. 4.2 countermeasure")
        (if Upec.Report.is_secure r then "SECURE"
         else if Upec.Report.is_vulnerable r then "VULNERABLE"
         else "INCONCLUSIVE")
        (Upec.Report.iterations r) r.Upec.Report.total_seconds)
    [
      ("round-robin", `Round_robin, Upec.Spec.Vulnerable);
      ("round-robin", `Round_robin, Upec.Spec.Secure);
      ("TDMA", `Tdma, Upec.Spec.Vulnerable);
    ];
  (* end-to-end confirmation: the attacks die in simulation *)
  let with_tdma s =
    {
      s with
      Scenarios.Scenario.sp_design =
        { s.Scenarios.Scenario.sp_design with Upec.Cli.d_arbiter = "tdma" };
    }
  in
  let dma_readings =
    Scenarios.Attacks.dma_timer_of
      (with_tdma (Scenarios.Scenario.default_for Scenarios.Scenario.Busted_timer))
      [ 0; 2; 4; 6; 8; 10 ]
  in
  let hwpe_readings =
    Scenarios.Attacks.hwpe_memory_of
      (with_tdma
         (Scenarios.Scenario.default_for Scenarios.Scenario.Hwpe_progressive))
      [ 0; 32; 64; 96; 128 ]
  in
  let distinct f l = List.length (List.sort_uniq compare (List.map f l)) in
  Format.fprintf ctx.fmt
    "@.attack replay under TDMA: timer readings %d distinct (was >1 under \
     RR); footprint readings %d distinct (was 5)@."
    (distinct (fun r -> r.Scenarios.Attacks.dt_timer) dma_readings)
    (distinct (fun r -> r.Scenarios.Attacks.hw_zero_cells) hwpe_readings);
  Format.fprintf ctx.fmt
    "=> the contention-free interconnect closes the whole channel class; \
     the trade-off is bandwidth (each master owns 1/n of the slots)@."

(* ---------------------------------------------------------------- *)
(* E9: symbolic starting state vs concrete-reset BMC                 *)
(* ---------------------------------------------------------------- *)

let e9 ctx =
  section ctx "E9 (Sec. 3.2): why the symbolic starting state is load-bearing";
  paper_note ctx
    "IPC employs a symbolic starting state modelling all possible input \
     histories — different from bounded model checking, which starts from \
     a concrete state. The preparation phase of the attack lives entirely \
     in that start state.";
  let s = spec Upec.Spec.Vulnerable in
  let (bmc_report, bmc_outcome), bmc_t =
    time (fun () ->
        Upec.Alg2.run ~max_k:4 ~reset_start:true ?jobs:ctx.jobs s)
  in
  let (ipc_report, _), ipc_t =
    time (fun () -> Upec.Alg2.run ?jobs:ctx.jobs (spec Upec.Spec.Vulnerable))
  in
  Format.fprintf ctx.fmt
    "start state      | verdict on the vulnerable SoC | time@.";
  Format.fprintf ctx.fmt "concrete (reset) | %-29s | %5.2fs@."
    (match bmc_outcome with
    | Upec.Alg2.Found_vulnerable -> "VULNERABLE"
    | Upec.Alg2.Hold { k; _ } ->
        Printf.sprintf "nothing within k=%d (MISSED)" k
    | Upec.Alg2.Gave_up -> "gave up")
    bmc_t;
  Format.fprintf ctx.fmt "symbolic (IPC)   | %-29s | %5.2fs@."
    (if Upec.Report.is_vulnerable ipc_report then "VULNERABLE" else "??")
    ipc_t;
  ignore bmc_report;
  Format.fprintf ctx.fmt
    "=> from reset the spying IPs are unconfigured, so no short window can \
     see the attack; the symbolic start subsumes every preparation phase \
     and detects immediately@."

(* ---------------------------------------------------------------- *)
(* A1: arbitration policy ablation                                   *)
(* ---------------------------------------------------------------- *)

let a1 ctx =
  section ctx "A1 (ablation): arbitration policy";
  Format.fprintf ctx.fmt
    "policy        | baseline verdict | secured verdict | secure proof time@.";
  List.iter
    (fun (label, arb) ->
      let cfg = { Soc.Config.formal_default with Soc.Config.arbiter = arb } in
      let rv = Upec.Alg1.run ?jobs:ctx.jobs (spec ~cfg Upec.Spec.Vulnerable) in
      let rs = Upec.Alg1.run ?jobs:ctx.jobs (spec ~cfg Upec.Spec.Secure) in
      Format.fprintf ctx.fmt "%-13s | %-16s | %-15s | %8.2fs@." label
        (if Upec.Report.is_vulnerable rv then "VULNERABLE" else "secure?!")
        (if Upec.Report.is_secure rs then "SECURE" else "vulnerable?!")
        rs.Upec.Report.total_seconds)
    [ ("round-robin", `Round_robin); ("fixed-prio", `Fixed_priority) ];
  Format.fprintf ctx.fmt
    "=> the channel and the countermeasure are independent of the \
     arbitration policy@."

(* ---------------------------------------------------------------- *)
(* A2: S_pers classification ablation                                *)
(* ---------------------------------------------------------------- *)

let a2 ctx =
  section ctx "A2 (ablation): treating interconnect buffers as persistent";
  Format.fprintf ctx.fmt
    "If the Sec. 3.4 classification is ignored and every state variable is \
     persistent,@.the very first transient divergence is reported as a \
     'vulnerability':@.@.";
  (* emulate by querying the first iteration's S_cex on the SECURED SoC:
     all of its members are interconnect buffers, i.e. false alarms under
     the naive classification *)
  let s = spec Upec.Spec.Secure in
  let r = Upec.Alg1.run ~max_iterations:1 ?jobs:ctx.jobs s in
  (match r.Upec.Report.steps with
  | st :: _ ->
      Format.fprintf ctx.fmt "secured SoC, iteration 1 S_cex: %a@."
        Rtl.Structural.pp_svar_set st.Upec.Report.st_cex;
      let all_interconnect =
        Rtl.Structural.Svar_set.for_all
          (fun sv -> Soc.Builder.is_interconnect s.Upec.Spec.soc sv)
          st.Upec.Report.st_cex
      in
      Format.fprintf ctx.fmt
        "all members are interconnect buffers: %b -> naive classification \
         would flag a secure design@."
        all_interconnect
  | [] -> Format.fprintf ctx.fmt "unexpected: no counterexample at iteration 1@.")

(* ---------------------------------------------------------------- *)
(* A3: Alg. 1 vs Alg. 2 on the vulnerable SoC                        *)
(* ---------------------------------------------------------------- *)

let a3 ctx =
  section ctx "A3 (ablation): fixed-point (Alg. 1) vs unrolled (Alg. 2)";
  let s1 = spec Upec.Spec.Vulnerable in
  let r1, t1 = time (fun () -> Upec.Alg1.run ?jobs:ctx.jobs s1) in
  let (r2, _), t2 =
    time (fun () -> Upec.Alg2.run ?jobs:ctx.jobs (spec Upec.Spec.Vulnerable))
  in
  Format.fprintf ctx.fmt "procedure | iterations | final k | verdict | time@.";
  Format.fprintf ctx.fmt "Alg. 1    | %10d | %7d | %-7s | %5.2fs@."
    (Upec.Report.iterations r1) (Upec.Report.final_k r1)
    (if Upec.Report.is_vulnerable r1 then "VULN" else "other")
    t1;
  Format.fprintf ctx.fmt "Alg. 2    | %10d | %7d | %-7s | %5.2fs@."
    (Upec.Report.iterations r2) (Upec.Report.final_k r2)
    (if Upec.Report.is_vulnerable r2 then "VULN" else "other")
    t2;
  Format.fprintf ctx.fmt
    "=> both detect; Alg. 2's counterexamples make every cycle explicit \
     (Sec. 3.5)@."

(* ---------------------------------------------------------------- *)
(* A4: solver feature ablation                                       *)
(* ---------------------------------------------------------------- *)

let a4 ctx =
  section ctx "A4 (ablation): SAT solver heuristics on the proof obligations";
  let d = Satsolver.Solver.default_options in
  let heavy_variants =
    (* decision-heuristic-free search is hopeless at this CNF size, so
       the no-VSIDS variant only runs on the small combinatorial core *)
    [
      ("default", d);
      ("no restarts", { d with Satsolver.Solver.use_restarts = false });
      ("no minimise", { d with Satsolver.Solver.use_minimization = false });
    ]
  in
  Format.fprintf ctx.fmt
    "--- UPEC-SSC vulnerable detection (tens of kvars) ---@.";
  Format.fprintf ctx.fmt "solver config | time | verdict@.";
  List.iter
    (fun (label, options) ->
      let r, dt =
        time (fun () ->
            Upec.Alg1.run ~solver_options:options (spec Upec.Spec.Vulnerable))
      in
      Format.fprintf ctx.fmt "%-13s | %5.2fs | %s@." label dt
        (if Upec.Report.is_vulnerable r then "VULN" else "??"))
    heavy_variants;
  Format.fprintf ctx.fmt
    "@.--- pigeonhole php(8,7) UNSAT (combinatorial core) ---@.";
  Format.fprintf ctx.fmt "solver config | time | conflicts@.";
  List.iter
    (fun (label, options) ->
      let s = Satsolver.Solver.create ~options () in
      for _ = 1 to 8 * 7 do
        ignore (Satsolver.Solver.new_var s)
      done;
      let v p h = Satsolver.Lit.make ((p * 7) + h) true in
      for p = 0 to 7 do
        Satsolver.Solver.add_clause s (List.init 7 (fun h -> v p h))
      done;
      for h = 0 to 6 do
        for p1 = 0 to 7 do
          for p2 = p1 + 1 to 7 do
            Satsolver.Solver.add_clause s
              [ Satsolver.Lit.negate (v p1 h); Satsolver.Lit.negate (v p2 h) ]
          done
        done
      done;
      let result, dt = time (fun () -> Satsolver.Solver.solve s) in
      assert (result = Satsolver.Solver.Unsat);
      Format.fprintf ctx.fmt "%-13s | %5.2fs | %d@." label dt
        (Satsolver.Solver.stats s).Satsolver.Solver.conflicts)
    (heavy_variants
    @ [ ("no VSIDS", { d with Satsolver.Solver.use_vsids = false }) ])

(* ---------------------------------------------------------------- *)
(* A5: incremental vs from-scratch solving across Alg. 1 iterations  *)
(* ---------------------------------------------------------------- *)

let a5 ctx =
  section ctx "A5 (ablation): incremental vs per-iteration solver sessions";
  Format.fprintf ctx.fmt
    "The paper re-runs the property checker per iteration; an engineering@.";
  Format.fprintf ctx.fmt
    "alternative keeps one session and passes State_Equivalence(S) as@.";
  Format.fprintf ctx.fmt "solver assumptions (learnt clauses survive).@.@.";
  Format.fprintf ctx.fmt "mode         | variant    | verdict | iterations | time@.";
  List.iter
    (fun (label, incremental, variant) ->
      let r, dt =
        time (fun () -> Upec.Alg1.run ~incremental (spec variant))
      in
      Format.fprintf ctx.fmt "%-12s | %-10s | %-7s | %10d | %5.2fs@." label
        (match variant with
        | Upec.Spec.Vulnerable -> "baseline"
        | Upec.Spec.Secure -> "secured")
        (if Upec.Report.is_vulnerable r then "VULN"
         else if Upec.Report.is_secure r then "SECURE"
         else "??")
        (Upec.Report.iterations r) dt)
    [
      ("per-check", false, Upec.Spec.Vulnerable);
      ("incremental", true, Upec.Spec.Vulnerable);
      ("per-check", false, Upec.Spec.Secure);
      ("incremental", true, Upec.Spec.Secure);
    ];
  Format.fprintf ctx.fmt
    "=> counterexample iterations become nearly free incrementally; the \
     final inductive UNSAT dominates either way@."

(* ---------------------------------------------------------------- *)
(* Certification overhead: proof logging + independent checking      *)
(* ---------------------------------------------------------------- *)

let certify_experiment ctx =
  section ctx "certify: verdict certification overhead";
  paper_note ctx
    "every verdict is revalidated independently: UNSAT results by a \
     forward RUP check of the solver's DRUP trace, SAT models by clause \
     evaluation, counterexamples by simulator replay. This experiment \
     measures what that double-checking costs next to the solving itself.";
  let cfg =
    {
      Soc.Config.formal_default with
      Soc.Config.pub_depth = 4;
      priv_depth = 4;
    }
  in
  let certified ?(cert_jobs = 0) ?(portfolio = 1) () =
    {
      Upec.Options.default with
      Upec.Options.certify = true;
      cert_jobs;
      portfolio;
    }
  in
  let runs =
    [
      ( "alg1-vulnerable",
        "sequential",
        0,
        fun () ->
          Upec.Alg1.run_with (certified ()) (spec ~cfg Upec.Spec.Vulnerable) );
      ( "alg1-secure",
        "sequential",
        0,
        fun () -> Upec.Alg1.run_with (certified ()) (spec ~cfg Upec.Spec.Secure)
      );
      ( "alg1-secure-portfolio2",
        "sequential",
        0,
        fun () ->
          Upec.Alg1.run_with
            (certified ~portfolio:2 ())
            (spec ~cfg Upec.Spec.Secure) );
      ( "alg2-vulnerable",
        "sequential",
        0,
        fun () ->
          Upec.Alg2.conclude_with (certified ())
            (spec ~cfg Upec.Spec.Vulnerable) );
      (* pipelined counterparts: same workloads, streaming checker *)
      ( "alg1-vulnerable-pipelined4",
        "pipelined",
        4,
        fun () ->
          Upec.Alg1.run_with
            (certified ~cert_jobs:4 ())
            (spec ~cfg Upec.Spec.Vulnerable) );
      ( "alg1-secure-pipelined4",
        "pipelined",
        4,
        fun () ->
          Upec.Alg1.run_with
            (certified ~cert_jobs:4 ())
            (spec ~cfg Upec.Spec.Secure) );
      ( "alg2-vulnerable-pipelined4",
        "pipelined",
        4,
        fun () ->
          Upec.Alg2.conclude_with
            (certified ~cert_jobs:4 ())
            (spec ~cfg Upec.Spec.Vulnerable) );
    ]
  in
  Format.fprintf ctx.fmt
    "run                        | mode       | verdict | solve    | check    \
     | overhead | proof steps | epochs | cex replay@.";
  let rows =
    List.map
      (fun (name, mode, cert_jobs, f) ->
        let r, dt = time f in
        let c =
          match r.Upec.Report.cert with
          | Some c -> c
          | None -> failwith "certified run produced no cert info"
        in
        let t = c.Upec.Report.ct_totals in
        let verdict =
          if Upec.Report.is_vulnerable r then "VULN"
          else if Upec.Report.is_secure r then "SECURE"
          else "INCONCL"
        in
        let cex_str =
          match c.Upec.Report.ct_cex_validated with
          | Some true -> "PASSED"
          | Some false -> "FAILED"
          | None -> "n/a"
        in
        Format.fprintf ctx.fmt
          "%-26s | %-10s | %-7s | %7.3fs | %7.3fs | %7.1f%% | %11d | %6d | \
           %s@."
          name mode verdict t.Cert.Proof.solve_seconds
          t.Cert.Proof.check_seconds
          (if t.Cert.Proof.solve_seconds > 0. then
             100. *. t.Cert.Proof.check_seconds /. t.Cert.Proof.solve_seconds
           else 0.)
          t.Cert.Proof.proof_steps t.Cert.Proof.epochs cex_str;
        (name, mode, cert_jobs, verdict, dt, t, c.Upec.Report.ct_cex_validated))
      runs
  in
  let oc = open_out "BENCH_certify.json" in
  Printf.fprintf oc "{\n  \"runs\": [\n";
  List.iteri
    (fun i (name, mode, cert_jobs, verdict, dt, t, cex) ->
      let overhead =
        if t.Cert.Proof.solve_seconds > 0. then
          100. *. t.Cert.Proof.check_seconds /. t.Cert.Proof.solve_seconds
        else 0.
      in
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"mode\": \"%s\", \"cert_jobs\": %d, \
         \"verdict\": \"%s\", \"total_seconds\": %.3f,\n\
        \      \"solve_seconds\": %.3f, \"check_seconds\": %.3f, \
         \"overhead_percent\": %.1f,\n\
        \      \"proof_steps\": %d, \"proof_lits\": %d, \"epochs\": %d, \
         \"spilled_epochs\": %d,\n\
        \      \"unsat_checked\": %d, \"sat_checked\": %d, \"cex_validated\": \
         %s }%s\n"
        name mode cert_jobs verdict dt t.Cert.Proof.solve_seconds
        t.Cert.Proof.check_seconds overhead t.Cert.Proof.proof_steps
        t.Cert.Proof.proof_lits t.Cert.Proof.epochs
        t.Cert.Proof.spilled_epochs t.Cert.Proof.unsat_checked
        t.Cert.Proof.sat_checked
        (match cex with
        | Some true -> "true"
        | Some false -> "false"
        | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.fprintf ctx.fmt "wrote BENCH_certify.json@.";
  Format.fprintf ctx.fmt
    "=> sequentially, the forward RUP check re-propagates every learnt \
     clause once after the fact and costs the same order as the solve \
     itself on proof-heavy UNSAT verdicts; the pipelined checker overlaps \
     that work with the search, leaving only the residual drain after the \
     final conflict as visible certification overhead@."

(* ---------------------------------------------------------------- *)
(* Budget governance: verdict quality vs conflict budget             *)
(* ---------------------------------------------------------------- *)

let budget_experiment ctx =
  section ctx "budget: graceful degradation under SAT conflict budgets";
  paper_note ctx
    "industrial property checking runs under resource caps; a budgeted \
     solve that gives up must degrade the verdict, not the tool. This \
     experiment sweeps a per-call conflict budget on the secure proof \
     (per-svar strategy) and records how much of the verdict survives: \
     degraded svars stay assumed but are no longer checked, so the result \
     is either the full SECURE verdict or an INCONCLUSIVE one naming \
     exactly what was left undecided — never a spurious flip.";
  let cfg =
    {
      Soc.Config.formal_default with
      Soc.Config.pub_depth = 4;
      priv_depth = 4;
    }
  in
  let jobs = match ctx.jobs with Some j -> j | None -> 1 in
  let budgets = [ 50; 200; 1_000; 10_000; 0 (* unlimited *) ] in
  Format.fprintf ctx.fmt
    "conflict budget | retries | verdict | unknowns | iterations | time@.";
  let rows =
    List.concat_map
      (fun conflicts ->
        List.map
          (fun retries ->
            let budget =
              if conflicts = 0 then Satsolver.Solver.no_budget
              else Satsolver.Solver.conflict_budget conflicts
            in
            let r, dt =
              time (fun () ->
                  Upec.Alg1.run ~jobs ~budget ~budget_retries:retries
                    (spec ~cfg Upec.Spec.Secure))
            in
            let verdict =
              if Upec.Report.is_secure r then "SECURE"
              else if Upec.Report.is_vulnerable r then "VULN"
              else "INCONCL"
            in
            let unknowns = List.length r.Upec.Report.unknowns in
            Format.fprintf ctx.fmt
              "%15s | %7d | %-7s | %8d | %10d | %5.2fs@."
              (if conflicts = 0 then "unlimited" else string_of_int conflicts)
              retries verdict unknowns
              (Upec.Report.iterations r)
              dt;
            (conflicts, retries, verdict, unknowns, dt))
          (if conflicts = 0 then [ 0 ] else [ 0; 2 ]))
      budgets
  in
  let oc = open_out "BENCH_budget.json" in
  Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"runs\": [\n" jobs;
  List.iteri
    (fun i (conflicts, retries, verdict, unknowns, dt) ->
      Printf.fprintf oc
        "    { \"conflict_budget\": %d, \"retries\": %d, \"verdict\": \
         \"%s\", \"unknown_svars\": %d, \"seconds\": %.3f }%s\n"
        conflicts retries verdict unknowns dt
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.fprintf ctx.fmt "wrote BENCH_budget.json@.";
  Format.fprintf ctx.fmt
    "=> tight budgets trade proof coverage for bounded latency: the run \
     always terminates, names every undecided svar, and escalating \
     retries recover the full verdict once the budget crosses the \
     hardest check's real cost@."

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks for the substrate kernels               *)
(* ---------------------------------------------------------------- *)

let kernels ctx =
  section ctx "substrate kernels (Bechamel)";
  let open Bechamel in
  let soc = formal_soc ~cfg:Soc.Config.formal_tiny () in
  let nl = soc.Soc.Builder.netlist in
  let sim_engine = Sim.Engine.create nl in
  let test_bitvec =
    Test.make ~name:"bitvec add+mul (32 bit)"
      (Staged.stage (fun () ->
           let a = Rtl.Bitvec.of_int ~width:32 0xdeadbeef in
           let b = Rtl.Bitvec.of_int ~width:32 0x12345678 in
           ignore (Rtl.Bitvec.mul (Rtl.Bitvec.add a b) b)))
  in
  let test_sim_step =
    Test.make ~name:"sim step (tiny SoC)"
      (Staged.stage (fun () -> Sim.Engine.step sim_engine))
  in
  let test_sat =
    Test.make ~name:"sat php(5,4) unsat"
      (Staged.stage (fun () ->
           let s = Satsolver.Solver.create () in
           for _ = 1 to 20 do
             ignore (Satsolver.Solver.new_var s)
           done;
           let v p h = Satsolver.Lit.make ((p * 4) + h) true in
           for p = 0 to 4 do
             Satsolver.Solver.add_clause s (List.init 4 (fun h -> v p h))
           done;
           for h = 0 to 3 do
             for p1 = 0 to 4 do
               for p2 = p1 + 1 to 4 do
                 Satsolver.Solver.add_clause s
                   [ Satsolver.Lit.negate (v p1 h); Satsolver.Lit.negate (v p2 h) ]
               done
             done
           done;
           ignore (Satsolver.Solver.solve s)))
  in
  let test_blast =
    Test.make ~name:"unroll 1 frame (tiny SoC)"
      (Staged.stage (fun () ->
           let eng = Ipc.Engine.create ~two_instance:false nl in
           Ipc.Engine.ensure_frames eng 1))
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [ test_bitvec; test_sim_step; test_sat; test_blast ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.fprintf ctx.fmt "%-28s %12.1f ns/run@." name est
      | Some _ | None -> Format.fprintf ctx.fmt "%-28s (no estimate)@." name)
    results

(* ---------------------------------------------------------------- *)
(* Proof farm: cold vs warm service latency, hit ratio, throughput   *)
(* ---------------------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let farm_experiment ctx =
  section ctx "farm: cached, sharded verification service";
  paper_note ctx
    "regression flows resubmit near-identical designs all day; the farm \
     answers unchanged jobs from a content-addressed report cache and \
     re-solves only the cone an RTL delta invalidates. This experiment \
     serves the same job batch cold then warm at 1/2/4 worker processes, \
     then mutates one IP (timer counter width) and measures how much of \
     the design the delta actually re-proves.";
  let worker_exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      "../bin/upec_farm.exe"
  in
  if not (Sys.file_exists worker_exe) then
    Format.fprintf ctx.fmt
      "upec_farm.exe not built (run dune build first) — skipping@."
  else begin
    let module Json = Upec.Json in
    let job ~id ~tw ~depth =
      Json.Obj
        [
          ("id", Json.Str id);
          ( "design",
            Json.Obj
              [
                ("depth", Json.Int depth);
                ("dma", Json.Bool false);
                ("hwpe", Json.Bool false);
                ("uart", Json.Bool false);
                ("timer_width", Json.Int tw);
              ] );
          ("options", Json.Obj [ ("jobs", Json.Int 1) ]);
        ]
    in
    let batch =
      List.concat_map
        (fun depth ->
          List.map
            (fun tw -> job ~id:(Printf.sprintf "d%d-tw%d" depth tw) ~tw ~depth)
            [ 8; 7; 6; 5 ])
        [ 3; 4 ]
    in
    let n = List.length batch in
    let serve ~cache_dir ~workers jobs =
      let server =
        Farm.Server.create ~cache_dir
          ~worker_argv:[| worker_exe; "worker"; "--cache"; cache_dir |]
          ~workers ~job_timeout:0.0 ()
      in
      let replies, dt = time (fun () -> Farm.Server.run_batch server ~jobs) in
      Farm.Server.close server;
      (replies, dt)
    in
    let hit_ratio replies =
      let hits =
        List.length
          (List.filter
             (fun r -> Json.to_bool (Json.member "cached" r) = Some true)
             replies)
      in
      float_of_int hits /. float_of_int (List.length replies)
    in
    Format.fprintf ctx.fmt
      "workers | cold batch | throughput | warm batch | hit ratio | speedup@.";
    let rows =
      List.map
        (fun workers ->
          let cache_dir = Printf.sprintf "farm-bench-cache-%d" workers in
          rm_rf cache_dir;
          let cold, cold_dt = serve ~cache_dir ~workers batch in
          let warm, warm_dt = serve ~cache_dir ~workers batch in
          assert (List.for_all (fun r -> Json.to_bool (Json.member "ok" r) = Some true) (cold @ warm));
          let ratio = hit_ratio warm in
          Format.fprintf ctx.fmt
            "%7d | %9.2fs | %7.2f/s | %9.3fs | %9.2f | %6.1fx@." workers
            cold_dt
            (float_of_int n /. cold_dt)
            warm_dt ratio (cold_dt /. warm_dt);
          (workers, cold_dt, warm_dt, ratio))
        [ 1; 2; 4 ]
    in
    (* the RTL delta: resubmit the depth-3 jobs one timer bit narrower;
       the lemma cache serves everything outside the timer cone *)
    let delta =
      List.map
        (fun tw -> job ~id:(Printf.sprintf "delta-tw%d" tw) ~tw ~depth:3)
        [ 4; 3; 2 ]
    in
    let delta_replies, delta_dt = serve ~cache_dir:"farm-bench-cache-2" ~workers:2 delta in
    let sum k =
      List.fold_left
        (fun acc r ->
          acc + Option.value ~default:0 (Json.to_int (Json.member k r)))
        0 delta_replies
    in
    let d_hits = sum "lemma_hits"
    and d_misses = sum "lemma_misses"
    and d_inval = sum "invalidated" in
    Format.fprintf ctx.fmt
      "delta pass (timer width changed, %d jobs): %d lemma hits, %d \
       re-solved (%d invalidations), %.3fs@."
      (List.length delta) d_hits d_misses d_inval delta_dt;
    (* fault-tolerance rows: the lease-retry path (one injected worker
       kill, shared chaos budget so exactly one fires) and cache-only
       degraded mode (zero workers over a warm cache). *)
    let retry_cache = "farm-bench-cache-retry" in
    let rjob = [ job ~id:"retry" ~tw:8 ~depth:3 ] in
    rm_rf retry_cache;
    let _, clean_dt = serve ~cache_dir:retry_cache ~workers:1 rjob in
    rm_rf retry_cache;
    let chaos_dir = "farm-bench-chaos" in
    rm_rf chaos_dir;
    let retry_replies, retry_dt =
      List.iter
        (fun (k, v) -> Unix.putenv k v)
        (Farm.Chaos.arm_dir ~dir:chaos_dir [ ("kill_worker_mid_job", 1) ]);
      Fun.protect
        ~finally:(fun () ->
          Unix.putenv "UPEC_FARM_CHAOS" "";
          Unix.putenv "UPEC_FARM_CHAOS_DIR" "")
        (fun () -> serve ~cache_dir:retry_cache ~workers:1 rjob)
    in
    assert (
      List.for_all
        (fun r -> Json.to_bool (Json.member "ok" r) = Some true)
        retry_replies);
    Format.fprintf ctx.fmt
      "retry path (worker SIGKILLed mid-job, lease requeued): clean %.3fs \
       -> faulted %.3fs (+%.0f%%), verdict served, not dropped@."
      clean_dt retry_dt
      ((retry_dt -. clean_dt) /. Float.max 1e-9 clean_dt *. 100.0);
    let degraded_replies, degraded_dt =
      serve ~cache_dir:"farm-bench-cache-1" ~workers:0 batch
    in
    assert (
      List.for_all
        (fun r -> Json.to_bool (Json.member "cached" r) = Some true)
        degraded_replies);
    Format.fprintf ctx.fmt
      "degraded mode (0 workers, warm cache): %d cached verdicts in %.3fs \
       (%.0f/s) — hits survive a dead pool@."
      n degraded_dt
      (float_of_int n /. degraded_dt);
    let oc = open_out "BENCH_farm.json" in
    Printf.fprintf oc
      "{\n  \"jobs_per_batch\": %d,\n  \"cores\": %d,\n  \"pool\": [\n" n
      (Parallel.Pool.default_jobs ());
    List.iteri
      (fun i (workers, cold_dt, warm_dt, ratio) ->
        Printf.fprintf oc
          "    { \"workers\": %d, \"cold_seconds\": %.3f, \
           \"warm_seconds\": %.3f, \"cold_throughput\": %.2f, \
           \"warm_hit_ratio\": %.3f }%s\n"
          workers cold_dt warm_dt
          (float_of_int n /. cold_dt)
          ratio
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc
      "  ],\n\
      \  \"delta\": { \"jobs\": %d, \"lemma_hits\": %d, \"lemma_misses\": \
       %d, \"invalidated\": %d, \"seconds\": %.3f },\n"
      (List.length delta) d_hits d_misses d_inval delta_dt;
    Printf.fprintf oc
      "  \"fault_tolerance\": {\n\
      \    \"retry_clean_seconds\": %.3f,\n\
      \    \"retry_faulted_seconds\": %.3f,\n\
      \    \"degraded_cache_only_jobs\": %d,\n\
      \    \"degraded_cache_only_seconds\": %.3f,\n\
      \    \"degraded_cache_only_throughput\": %.2f\n\
      \  }\n}\n"
      clean_dt retry_dt n degraded_dt
      (float_of_int n /. degraded_dt);
    close_out oc;
    Format.fprintf ctx.fmt "wrote BENCH_farm.json@.";
    Format.fprintf ctx.fmt
      "=> an unchanged resubmission never reaches a solver — the daemon \
       serves the stored artefact from the fingerprint — and a one-IP \
       delta re-proves only the checks whose cache key its cone \
       intersects@."
  end

(* ---------------------------------------------------------------- *)
(* matrix: scenario catalog — formal vs statistical cross-check      *)
(* ---------------------------------------------------------------- *)

let matrix_experiment ctx =
  section ctx
    "matrix: scenario catalog — formal verdict vs timing statistics";
  paper_note ctx
    "every catalog scenario is decided twice: by UPEC-SSC on the \
     formal-scale design and by a Welch t-test over paired cycle counts at \
     simulation scale; the two must agree in both directions (vulnerable \
     => significant delta + replaying witness; secure => no delta)";
  let options = { Upec.Options.default with Upec.Options.jobs = ctx.jobs } in
  Format.fprintf ctx.fmt "%-28s | %-12s %7s | %-12s %9s | %s@." "scenario"
    "formal" "secs" "stat" "p" "status";
  let outcomes =
    Scenarios.Crosscheck.run_matrix ~options
      ~progress:(fun o ->
        let open Scenarios.Crosscheck in
        Format.fprintf ctx.fmt "%-28s | %-12s %7.1f | %-12s %9.2e | %s@."
          o.oc_spec.Scenarios.Scenario.sp_name
          (formal_verdict_string o.oc_report)
          o.oc_report.Upec.Report.total_seconds
          (Scenarios.Stat.verdict_to_string
             o.oc_stat.Scenarios.Stat.st_verdict)
          o.oc_stat.Scenarios.Stat.st_p
          (if o.oc_agree && o.oc_expected_ok then "ok"
           else if not o.oc_agree then "DISAGREE"
           else "UNEXPECTED"))
      Scenarios.Scenario.catalog
  in
  let oc = open_out "BENCH_matrix.json" in
  output_string oc
    (Upec.Json.to_string (Scenarios.Crosscheck.matrix_to_json outcomes));
  close_out oc;
  Format.fprintf ctx.fmt "wrote BENCH_matrix.json@.";
  let bad =
    List.filter
      (fun o ->
        not
          (o.Scenarios.Crosscheck.oc_agree
          && o.Scenarios.Crosscheck.oc_expected_ok))
      outcomes
  in
  Format.fprintf ctx.fmt
    "=> %d scenarios, %d disagreement(s): the statistical channel evidence \
     tracks the formal verdict across every family and design point@."
    (List.length outcomes) (List.length bad)

(* ---------------------------------------------------------------- *)

let all_experiments ~full =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3 ~full);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("A1", a1);
    ("A2", a2);
    ("A3", a3);
    ("A4", a4);
    ("A5", a5);
    ("certify", certify_experiment);
    ("budget", budget_experiment);
    ("farm", farm_experiment);
    ("matrix", matrix_experiment);
    ("kernels", kernels);
  ]

(* Tracing overhead calibration for the smoke artefact: the same small
   proof, untraced then traced to a throwaway file, best-of-3 each so a
   scheduler hiccup cannot fake a regression. Runs before the main
   sink is installed ([Obs.Trace] allows one sink per process). *)
let measure_trace_overhead () =
  let cfg =
    {
      Soc.Config.formal_default with
      Soc.Config.pub_depth = 4;
      priv_depth = 4;
      with_dma = false;
      with_hwpe = false;
    }
  in
  let proof () = ignore (Upec.Alg1.run (spec ~cfg Upec.Spec.Vulnerable)) in
  proof () (* warm-up: first run pays one-off allocation costs *);
  let best f =
    let m = ref infinity in
    for _ = 1 to 3 do
      let _, dt = time f in
      if dt < !m then m := dt
    done;
    !m
  in
  let plain = best proof in
  let path = Filename.temp_file "upec-trace-overhead" ".jsonl" in
  let traced = best (fun () -> Obs.Trace.with_file path proof) in
  (try Sys.remove path with Sys_error _ -> ());
  if plain > 0. then (traced -. plain) /. plain *. 100. else 0.

let write_smoke_json ~jobs ~total ~overhead_pct results =
  let oc = open_out "BENCH_smoke.json" in
  Printf.fprintf oc "{\n  \"mode\": \"smoke\",\n  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"total_seconds\": %.3f,\n  \"experiments\": [\n" total;
  List.iteri
    (fun i (name, _, dt) ->
      Printf.fprintf oc "    { \"name\": \"%s\", \"seconds\": %.3f }%s\n" name
        dt
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"trace_overhead_percent\": %.2f,\n" overhead_pct;
  (* CNF problem-reduction accounting (cone-of-influence restriction of
     witness-free solves): sizes before -> after, aggregated over the
     smoke proofs. *)
  (match !smoke_simp with
  | Some red when red.Simp.red_solves > 0 ->
      Printf.fprintf oc
        "  \"simp\": {\n\
        \    \"reduced_solves\": %d,\n\
        \    \"full_vars\": %d,\n\
        \    \"full_clauses\": %d,\n\
        \    \"reduced_vars\": %d,\n\
        \    \"reduced_clauses\": %d\n\
        \  },\n"
        red.Simp.red_solves red.Simp.red_full_vars red.Simp.red_full_clauses
        red.Simp.red_vars red.Simp.red_clauses
  | _ -> ());
  (* Per-phase profile of the smoke run itself, from the metrics
     registry: where the proof time actually went. *)
  let snap = Obs.Metrics.snapshot () in
  let hist_sum name =
    match List.assoc_opt name snap.Obs.Metrics.histograms with
    | Some hs -> hs.Obs.Metrics.hs_sum
    | None -> 0.0
  in
  let counter name =
    match List.assoc_opt name snap.Obs.Metrics.counters with
    | Some n -> n
    | None -> 0
  in
  Printf.fprintf oc "  \"profile\": {\n";
  let phases =
    [
      "sat.solve_seconds";
      "unroll.frame_seconds";
      "ipc.pre_encode_seconds";
      "pool.task_seconds";
    ]
  in
  List.iter
    (fun name -> Printf.fprintf oc "    \"%s\": %.4f,\n" name (hist_sum name))
    phases;
  let counters = [ "sat.solves"; "sat.conflicts"; "ipc.checks"; "pool.tasks" ]
  in
  List.iteri
    (fun i name ->
      Printf.fprintf oc "    \"%s\": %d%s\n" name (counter name)
        (if i = List.length counters - 1 then "" else ","))
    counters;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Format.printf "wrote BENCH_smoke.json@."

let usage () =
  Format.printf
    "usage: main.exe [E1..E9 A1..A5 kernels]* [smoke] [full] [-j N] [--trace \
     FILE] [--metrics FILE]@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace_file = ref None in
  let metrics_file = ref None in
  let rec parse jobs sel = function
    | [] -> (jobs, List.rev sel)
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n -> parse (Some n) sel rest
        | None ->
            usage ();
            exit 1)
    | "--trace" :: path :: rest ->
        trace_file := Some path;
        parse jobs sel rest
    | "--metrics" :: path :: rest ->
        metrics_file := Some path;
        parse jobs sel rest
    | ("-j" | "--jobs" | "--trace" | "--metrics") :: [] ->
        usage ();
        exit 1
    | a :: rest -> parse jobs (a :: sel) rest
  in
  let jobs_arg, args = parse None [] args in
  let full = List.mem "full" args in
  let smoke = List.mem "smoke" args in
  (* Calibrate before installing the main sink (one sink per process),
     then reset the registry so the smoke profile reflects only the
     experiments themselves. *)
  let overhead_pct = if smoke then measure_trace_overhead () else 0.0 in
  if smoke then Obs.Metrics.reset ();
  (match !trace_file with
  | Some path ->
      Obs.Trace.set_sink (open_out path);
      at_exit Obs.Trace.close
  | None -> ());
  (match !metrics_file with
  | Some path -> at_exit (fun () -> Obs.Metrics.dump_file path)
  | None -> ());
  let selected = List.filter (fun a -> a <> "full" && a <> "smoke") args in
  let experiments = all_experiments ~full in
  let to_run =
    if smoke then
      List.filter (fun (name, _) -> name = "E1" || name = "E2") experiments
    else if selected = [] then experiments
    else List.filter (fun (name, _) -> List.mem name selected) experiments
  in
  if to_run = [] then begin
    Format.printf "unknown selection; available: %s@."
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  (* Two levels of parallelism, never both: with one experiment selected,
     -j goes to the provers (per-svar strategy); with several, -j runs
     whole experiments concurrently and the provers stay sequential. *)
  let resolve n = if n <= 0 then Parallel.Pool.default_jobs () else n in
  let outer_jobs, inner_jobs =
    match (jobs_arg, to_run) with
    | None, _ -> (1, None)
    | Some n, [ _ ] -> (1, Some (resolve n))
    | Some n, _ -> (min (resolve n) (List.length to_run), None)
  in
  let t0 = Unix.gettimeofday () in
  let results =
    Parallel.Pool.with_pool ~jobs:outer_jobs (fun pool ->
        Parallel.Pool.map pool
          (fun (name, f) ->
            let buf = Buffer.create 4096 in
            let fmt = Format.formatter_of_buffer buf in
            let e0 = Unix.gettimeofday () in
            f { fmt; jobs = inner_jobs };
            Format.pp_print_flush fmt ();
            (name, Buffer.contents buf, Unix.gettimeofday () -. e0))
          to_run)
  in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter (fun (_, output, _) -> print_string output) results;
  Format.printf "@.---------------- timing summary ----------------@.";
  Format.printf "experiment | wall-clock@.";
  List.iter
    (fun (name, _, dt) -> Format.printf "%-10s | %8.2fs@." name dt)
    results;
  let sum = List.fold_left (fun acc (_, _, dt) -> acc +. dt) 0. results in
  Format.printf "sum of experiments: %.1fs; wall: %.1fs" sum wall;
  if outer_jobs > 1 then
    Format.printf " (aggregate speedup %.2fx on %d domains)" (sum /. wall)
      outer_jobs;
  Format.printf "@.";
  if smoke then write_smoke_json ~jobs:outer_jobs ~total:wall ~overhead_pct results
