(* Command-line driver for the UPEC-SSC analyses.

   Examples:
     upec_ssc check --variant vulnerable --alg 2
     upec_ssc check --variant secure --alg 1 --depth 8
     upec_ssc invariants --variant secure
     upec_ssc stats --depth 16 *)

open Cmdliner

let cfg_of ~depth ~banks ~arbiter ~no_dma ~no_hwpe =
  {
    Soc.Config.formal_default with
    Soc.Config.pub_depth = depth;
    priv_depth = depth;
    pub_banks = banks;
    priv_banks = banks;
    with_dma = not no_dma;
    with_hwpe = not no_hwpe;
    arbiter =
      (match arbiter with
      | "fixed" -> `Fixed_priority
      | "tdma" -> `Tdma
      | _ -> `Round_robin);
  }

let spec_of ~variant ~pers ~depth ~banks ~arbiter ~no_dma ~no_hwpe =
  let cfg = cfg_of ~depth ~banks ~arbiter ~no_dma ~no_hwpe in
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  let variant =
    match variant with
    | "secure" -> Upec.Spec.Secure
    | _ -> Upec.Spec.Vulnerable
  in
  let pers_model =
    match pers with
    | "memory" -> Upec.Spec.Memory_only
    | _ -> Upec.Spec.Full_pers
  in
  Upec.Spec.make ~pers_model soc variant

let variant_arg =
  let doc = "SoC variant to analyse: 'vulnerable' or 'secure'." in
  Arg.(value & opt string "vulnerable" & info [ "variant" ] ~doc)

let alg_arg =
  let doc = "Procedure: 1 (fixed point, Alg. 1) or 2 (unrolled, Alg. 2)." in
  Arg.(value & opt int 1 & info [ "alg" ] ~doc)

let pers_arg =
  let doc = "S_pers model: 'full' or 'memory' (footprint-only retrieval)." in
  Arg.(value & opt string "full" & info [ "pers" ] ~doc)

let depth_arg =
  let doc = "Words per SRAM bank." in
  Arg.(value & opt int 8 & info [ "depth" ] ~doc)

let banks_arg =
  let doc = "SRAM banks per region (power of two)." in
  Arg.(value & opt int 2 & info [ "banks" ] ~doc)

let arbiter_arg =
  let doc = "Arbitration policy: 'rr', 'fixed' or 'tdma'." in
  Arg.(value & opt string "rr" & info [ "arbiter" ] ~doc)

let no_dma_arg =
  let doc = "Build the SoC without the DMA engine." in
  Arg.(value & flag & info [ "no-dma" ] ~doc)

let no_hwpe_arg =
  let doc = "Build the SoC without the HWPE accelerator." in
  Arg.(value & flag & info [ "no-hwpe" ] ~doc)

let max_k_arg =
  let doc = "Maximum unrolling depth for Alg. 2." in
  Arg.(value & opt int 8 & info [ "max-k" ] ~doc)

let full_cex_arg =
  let doc = "Print the full counterexample waveform." in
  Arg.(value & flag & info [ "full-cex" ] ~doc)

let incremental_arg =
  let doc = "Keep one solver session across Alg. 1 iterations." in
  Arg.(value & flag & info [ "incremental" ] ~doc)

let jobs_arg =
  let doc =
    "Run the per-svar strategy on N worker domains (0 = auto: \\$(b,UPEC_JOBS) \
     or the recommended domain count). Verdicts and reports are identical \
     for every N."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")

let portfolio_arg =
  let doc =
    "Race K diversified solver configurations inside every SAT call."
  in
  Arg.(value & opt int 1 & info [ "portfolio" ] ~doc ~docv:"K")

let stats_flag_arg =
  let doc = "Print per-iteration solver statistics and portfolio winners." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let certify_arg =
  let doc =
    "Certify every verdict: UNSAT results are revalidated by an independent \
     RUP proof checker, SAT models by clause evaluation, and vulnerable \
     counterexamples are replayed through the standalone simulator."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let cex_vcd_arg =
  let doc =
    "Dump the counterexample as paired VCD waveforms \\$(docv).A.vcd / \
     \\$(docv).B.vcd (one file per instance)."
  in
  Arg.(value & opt (some string) None & info [ "cex-vcd" ] ~doc ~docv:"PREFIX")

let resolve_jobs = function
  | Some 0 -> Some (Parallel.Pool.default_jobs ())
  | j -> j

let check_cmd =
  let run variant alg pers depth banks arbiter no_dma no_hwpe max_k full_cex
      incremental jobs portfolio stats certify cex_vcd =
    let spec = spec_of ~variant ~pers ~depth ~banks ~arbiter ~no_dma ~no_hwpe in
    let jobs = resolve_jobs jobs in
    let report =
      if alg = 2 then
        Upec.Alg2.conclude ~max_k ?jobs ~portfolio ~certify ?cex_vcd spec
      else Upec.Alg1.run ~incremental ?jobs ~portfolio ~certify ?cex_vcd spec
    in
    Format.printf "%a@." Upec.Report.pp report;
    if stats then Format.printf "%a@." Upec.Report.pp_stats report;
    (match (full_cex, report.Upec.Report.verdict) with
    | true, Upec.Report.Vulnerable { cex; _ } ->
        Format.printf "%a@." Ipc.Cex.pp_full cex
    | _ -> ());
    if Upec.Report.is_vulnerable report then exit 10 else exit 0
  in
  let doc = "Run the UPEC-SSC security analysis." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ variant_arg $ alg_arg $ pers_arg $ depth_arg $ banks_arg
      $ arbiter_arg $ no_dma_arg $ no_hwpe_arg $ max_k_arg $ full_cex_arg
      $ incremental_arg $ jobs_arg $ portfolio_arg $ stats_flag_arg
      $ certify_arg $ cex_vcd_arg)

let invariants_cmd =
  let run variant depth banks arbiter =
    let spec =
      spec_of ~variant ~pers:"full" ~depth ~banks ~arbiter ~no_dma:false
        ~no_hwpe:false
    in
    Format.printf "base case (reset state):@.";
    List.iter
      (fun (name, ok) ->
        Format.printf "  [%s] %s@." (if ok then "ok" else "FAIL") name)
      (Upec.Invariant.check_base spec);
    Format.printf "induction step:@.";
    List.iter
      (fun (name, ok) ->
        Format.printf "  [%s] %s@." (if ok then "ok" else "FAIL") name)
      (Upec.Invariant.check_inductive spec)
  in
  let doc = "Check that the assumed reachability invariants are sound." in
  Cmd.v
    (Cmd.info "invariants" ~doc)
    Term.(const run $ variant_arg $ depth_arg $ banks_arg $ arbiter_arg)

let emit_cmd =
  let run depth banks arbiter out =
    let cfg = cfg_of ~depth ~banks ~arbiter ~no_dma:false ~no_hwpe:false in
    let soc = Soc.Builder.build cfg Soc.Builder.Formal in
    Rtl.Verilog.write_file out soc.Soc.Builder.netlist;
    Format.printf "wrote %s (%s)@." out
      (Rtl.Netlist.stats soc.Soc.Builder.netlist)
  in
  let out_arg =
    Arg.(value & opt string "soc.v" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let doc = "Export the formal-mode SoC netlist as Verilog." in
  Cmd.v
    (Cmd.info "emit" ~doc)
    Term.(const run $ depth_arg $ banks_arg $ arbiter_arg $ out_arg)

let stats_cmd =
  let run depth banks arbiter =
    let cfg = cfg_of ~depth ~banks ~arbiter ~no_dma:false ~no_hwpe:false in
    let soc = Soc.Builder.build cfg Soc.Builder.Formal in
    print_endline (Rtl.Netlist.stats soc.Soc.Builder.netlist)
  in
  let doc = "Print netlist statistics for a configuration." in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const run $ depth_arg $ banks_arg $ arbiter_arg)

let () =
  let doc = "UPEC-SSC: formal detection of MCU-wide timing side channels" in
  let info = Cmd.info "upec_ssc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ check_cmd; invariants_cmd; stats_cmd; emit_cmd ]))
