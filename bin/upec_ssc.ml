(* Command-line driver for the UPEC-SSC analyses.

   Examples:
     upec_ssc check --variant vulnerable --alg 2
     upec_ssc check --variant secure --alg 1 --depth 8
     upec_ssc invariants --variant secure
     upec_ssc stats --depth 16 *)

open Cmdliner

(* The design/options semantics (string enumerations, defaults, budget
   assembly) live in Upec.Cli, shared with the proof farm's JSON job
   codec; this file only contributes the Cmdliner flag layer. *)

let variant_arg =
  let doc = "SoC variant to analyse: 'vulnerable' or 'secure'." in
  Arg.(value & opt string "vulnerable" & info [ "variant" ] ~doc)

let alg_arg =
  let doc = "Procedure: 1 (fixed point, Alg. 1) or 2 (unrolled, Alg. 2)." in
  Arg.(value & opt int 1 & info [ "alg" ] ~doc)

let pers_arg =
  let doc = "S_pers model: 'full' or 'memory' (footprint-only retrieval)." in
  Arg.(value & opt string "full" & info [ "pers" ] ~doc)

let depth_arg =
  let doc = "Words per SRAM bank." in
  Arg.(value & opt int 8 & info [ "depth" ] ~doc)

let banks_arg =
  let doc = "SRAM banks per region (power of two)." in
  Arg.(value & opt int 2 & info [ "banks" ] ~doc)

let arbiter_arg =
  let doc = "Arbitration policy: 'rr', 'fixed' or 'tdma'." in
  Arg.(value & opt string "rr" & info [ "arbiter" ] ~doc)

let no_dma_arg =
  let doc = "Build the SoC without the DMA engine." in
  Arg.(value & flag & info [ "no-dma" ] ~doc)

let no_hwpe_arg =
  let doc = "Build the SoC without the HWPE accelerator." in
  Arg.(value & flag & info [ "no-hwpe" ] ~doc)

let no_uart_arg =
  let doc = "Build the SoC without the UART." in
  Arg.(value & flag & info [ "no-uart" ] ~doc)

let timer_width_arg =
  let doc = "Timer counter width in bits (an easy one-IP RTL delta)." in
  Arg.(
    value
    & opt int Upec.Cli.default_design.Upec.Cli.d_timer_width
    & info [ "timer-width" ] ~doc ~docv:"BITS")

(* Deprecated shim layer: each flag desugars onto the declarative
   design record (the same record a --scenario spec carries), so a
   flag invocation and the equivalent Scenario.spec build bit-identical
   specs and hit the same farm cache entries. New design knobs are not
   given flags — describe them in a scenario file instead. *)
let design_term =
  let make variant pers depth banks arbiter no_dma no_hwpe no_uart timer_width
      =
    {
      Upec.Cli.default_design with
      Upec.Cli.d_variant = variant;
      d_pers = pers;
      d_depth = depth;
      d_banks = banks;
      d_arbiter = arbiter;
      d_dma = not no_dma;
      d_hwpe = not no_hwpe;
      d_uart = not no_uart;
      d_timer_width = timer_width;
    }
  in
  Term.(
    const make $ variant_arg $ pers_arg $ depth_arg $ banks_arg $ arbiter_arg
    $ no_dma_arg $ no_hwpe_arg $ no_uart_arg $ timer_width_arg)

let scenario_arg =
  let doc =
    "Run a named catalog scenario (e.g. 'busted_timer_d4') or a scenario \
     spec file (JSON, see Scenarios.Scenario). The scenario supplies the \
     design and the procedure; the individual design flags and --alg are \
     ignored."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~doc ~docv:"NAME|FILE")

let resolve_scenario name =
  if Sys.file_exists name then (
    try Scenarios.Scenario.load_file name
    with Upec.Json.Parse_error msg | Sys_error msg ->
      Format.eprintf "upec_ssc: bad scenario file %s: %s@." name msg;
      exit 3)
  else
    match Scenarios.Scenario.find name with
    | Some s -> s
    | None ->
        Format.eprintf
          "upec_ssc: unknown scenario %s (not a file, not in the catalog)@."
          name;
        Format.eprintf "known scenarios:@.";
        List.iter
          (fun s ->
            Format.eprintf "  %s@." s.Scenarios.Scenario.sp_name)
          Scenarios.Scenario.catalog;
        exit 3

let max_k_arg =
  let doc = "Maximum unrolling depth for Alg. 2." in
  Arg.(value & opt int 8 & info [ "max-k" ] ~doc)

let full_cex_arg =
  let doc = "Print the full counterexample waveform." in
  Arg.(value & flag & info [ "full-cex" ] ~doc)

let no_incremental_arg =
  let doc =
    "Escape hatch: give every check a fresh solver session instead of \
     keeping one warm session across iterations (and, for Alg. 2, across \
     unrolling depths)."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_simp_arg =
  let doc =
    "Escape hatch: disable problem reduction (cone-of-influence \
     restriction of witness-free SAT calls). Verdicts are identical with \
     and without it."
  in
  Arg.(value & flag & info [ "no-simp" ] ~doc)

let json_arg =
  let doc =
    "Write the machine-readable report (schema 3: verdict, iteration \
     table, options echo, reduction statistics and, with --scenario, the \
     scenario block) to \\$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")

let jobs_arg =
  let doc =
    "Run the per-svar strategy on N worker domains (0 = auto: \\$(b,UPEC_JOBS) \
     or the recommended domain count). Verdicts and reports are identical \
     for every N."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")

let portfolio_arg =
  let doc =
    "Race K diversified solver configurations inside every SAT call."
  in
  Arg.(value & opt int 1 & info [ "portfolio" ] ~doc ~docv:"K")

let stats_flag_arg =
  let doc = "Print per-iteration solver statistics and portfolio winners." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let certify_arg =
  let doc =
    "Certify every verdict: UNSAT results are revalidated by an independent \
     RUP proof checker, SAT models by clause evaluation, and vulnerable \
     counterexamples are replayed through the standalone simulator."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let cert_jobs_arg =
  let doc =
    "With \\$(b,--certify): stream each UNSAT proof into \\$(docv) parallel \
     checker domains while the solver searches, instead of re-checking it \
     sequentially afterwards (0 = post-hoc sequential check). Accept/reject \
     decisions are identical; only the certification overhead shrinks."
  in
  Arg.(value & opt int 0 & info [ "cert-jobs" ] ~doc ~docv:"N")

let cex_vcd_arg =
  let doc =
    "Dump the counterexample as paired VCD waveforms \\$(docv).A.vcd / \
     \\$(docv).B.vcd (one file per instance)."
  in
  Arg.(value & opt (some string) None & info [ "cex-vcd" ] ~doc ~docv:"PREFIX")

let conflict_budget_arg =
  let doc =
    "Give up on any single SAT call after \\$(docv) conflicts (0 = \
     unlimited). Exhausted calls are retried with escalating budgets; a \
     state variable still undecided afterwards is excluded conservatively \
     and reported, it never aborts the run."
  in
  Arg.(value & opt int 0 & info [ "conflict-budget" ] ~doc ~docv:"N")

let prop_budget_arg =
  let doc = "Per-SAT-call propagation cap (0 = unlimited)." in
  Arg.(value & opt int 0 & info [ "prop-budget" ] ~doc ~docv:"N")

let timeout_arg =
  let doc = "Per-SAT-call wall-clock cap in seconds (0 = unlimited)." in
  Arg.(value & opt float 0.0 & info [ "timeout" ] ~doc ~docv:"SECS")

let budget_retries_arg =
  let doc = "Extra attempts for a budget-exhausted SAT call." in
  Arg.(value & opt int 2 & info [ "budget-retries" ] ~doc ~docv:"N")

let budget_escalation_arg =
  let doc = "Budget scale factor applied on each retry." in
  Arg.(value & opt float 4.0 & info [ "budget-escalation" ] ~doc ~docv:"F")

let checkpoint_arg =
  let doc =
    "Persist the iteration state to \\$(docv) (atomic rename) after every \
     completed iteration, and on SIGINT/SIGTERM. Resume with \\$(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~doc ~docv:"FILE")

let resume_arg =
  let doc =
    "Resume from a checkpoint written by \\$(b,--checkpoint). The stored \
     config hash must match the current design/variant/persistence options; \
     a mismatch is refused."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Stream observability spans (solver, unroller, pool, per-iteration \
     phases) to \\$(docv) as JSONL. The sink is buffered with whole lines \
     and flushed on exit — also on interrupt — so the file is always \
     parseable."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let metrics_arg =
  let doc =
    "Write the final metrics registry (counters, gauges, log-scale \
     histograms) to \\$(docv) as JSON on exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let check_cmd =
  let run design alg scenario max_k full_cex no_incremental no_simp json_file
      jobs portfolio stats certify cert_jobs cex_vcd conflict_budget
      prop_budget timeout budget_retries budget_escalation checkpoint_file
      resume_file trace_file metrics_file =
    let scenario = Option.map resolve_scenario scenario in
    let design, alg =
      match scenario with
      | Some s -> (s.Scenarios.Scenario.sp_design, s.Scenarios.Scenario.sp_alg)
      | None -> (design, alg)
    in
    (* [exit] is used for status codes below, so scope-based closing
       (Fun.protect) would never run: close the sink from [at_exit],
       which fires on every exit path including the interrupt ones.
       Obs.Trace.close is idempotent and flushes whole lines only. *)
    (match trace_file with
    | Some path ->
        Obs.Trace.set_sink (open_out path);
        at_exit Obs.Trace.close
    | None -> ());
    (match metrics_file with
    | Some path -> at_exit (fun () -> Obs.Metrics.dump_file path)
    | None -> ());
    let spec = Upec.Cli.spec_of design in
    let jobs = Upec.Cli.resolve_jobs jobs in
    let budget =
      Upec.Cli.budget_of ~conflicts:conflict_budget ~props:prop_budget
        ~seconds:timeout
    in
    let resume =
      match resume_file with
      | None -> None
      | Some file -> (
          match Upec.Checkpoint.load file with
          | Ok ck -> Some ck
          | Error msg ->
              Format.eprintf "upec_ssc: cannot resume from %s: %s@." file msg;
              exit 3)
    in
    (* Cooperative interruption: the handler only flips a flag; every
       in-flight solve polls it and unwinds, the algorithm discards the
       partial iteration (the checkpoint keeps the last completed one)
       and we still get a partial report before the nonzero exit. *)
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    List.iter
      (fun s -> Sys.set_signal s (Sys.Signal_handle on_signal))
      [ Sys.sigint; Sys.sigterm ];
    let should_stop () = Atomic.get stop in
    let options =
      {
        Upec.Options.default with
        Upec.Options.max_k;
        incremental = not no_incremental;
        simp = not no_simp;
        jobs;
        portfolio;
        certify;
        cert_jobs = max 0 cert_jobs;
        cex_vcd;
        budget;
        budget_retries;
        budget_escalation;
        checkpoint_file;
        should_stop = Some should_stop;
      }
    in
    let report =
      try
        if alg = 2 then Upec.Alg2.conclude_with ?resume options spec
        else Upec.Alg1.run_with ?resume options spec
      with Invalid_argument msg when resume <> None ->
        Format.eprintf "upec_ssc: checkpoint refused: %s@." msg;
        exit 3
    in
    let report =
      match scenario with
      | Some s ->
          {
            report with
            Upec.Report.extra =
              [ ("scenario", Scenarios.Scenario.to_json s) ];
          }
      | None -> report
    in
    Format.printf "%a@." Upec.Report.pp report;
    (match json_file with
    | Some path ->
        let oc = open_out path in
        output_string oc (Upec.Json.to_string (Upec.Report.to_json report));
        close_out oc
    | None -> ());
    if stats then begin
      Format.printf "%a@." Upec.Report.pp_stats report;
      Format.printf "%a@." Upec.Report.pp_metrics report
    end;
    (match (full_cex, report.Upec.Report.verdict) with
    | true, Upec.Report.Vulnerable { cex; _ } ->
        Format.printf "%a@." Ipc.Cex.pp_full cex
    | _ -> ());
    if Atomic.get stop then begin
      (match checkpoint_file with
      | Some file when Sys.file_exists file ->
          Format.eprintf
            "upec_ssc: interrupted; resume with --resume %s@." file
      | _ -> Format.eprintf "upec_ssc: interrupted@.");
      exit 130
    end;
    if Upec.Report.is_vulnerable report then exit 10 else exit 0
  in
  let doc = "Run the UPEC-SSC security analysis." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ design_term $ alg_arg $ scenario_arg $ max_k_arg
      $ full_cex_arg $ no_incremental_arg $ no_simp_arg $ json_arg $ jobs_arg
      $ portfolio_arg $ stats_flag_arg $ certify_arg $ cert_jobs_arg
      $ cex_vcd_arg $ conflict_budget_arg $ prop_budget_arg $ timeout_arg
      $ budget_retries_arg $ budget_escalation_arg $ checkpoint_arg
      $ resume_arg $ trace_arg $ metrics_arg)

let invariants_cmd =
  let run design =
    let spec = Upec.Cli.spec_of design in
    Format.printf "base case (reset state):@.";
    List.iter
      (fun (name, ok) ->
        Format.printf "  [%s] %s@." (if ok then "ok" else "FAIL") name)
      (Upec.Invariant.check_base spec);
    Format.printf "induction step:@.";
    List.iter
      (fun (name, ok) ->
        Format.printf "  [%s] %s@." (if ok then "ok" else "FAIL") name)
      (Upec.Invariant.check_inductive spec)
  in
  let doc = "Check that the assumed reachability invariants are sound." in
  Cmd.v (Cmd.info "invariants" ~doc) Term.(const run $ design_term)

let emit_cmd =
  let run design out =
    let soc =
      Soc.Builder.build (Upec.Cli.config_of design) Soc.Builder.Formal
    in
    Rtl.Verilog.write_file out soc.Soc.Builder.netlist;
    Format.printf "wrote %s (%s)@." out
      (Rtl.Netlist.stats soc.Soc.Builder.netlist)
  in
  let out_arg =
    Arg.(value & opt string "soc.v" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let doc = "Export the formal-mode SoC netlist as Verilog." in
  Cmd.v (Cmd.info "emit" ~doc) Term.(const run $ design_term $ out_arg)

let stats_cmd =
  let run design =
    let soc =
      Soc.Builder.build (Upec.Cli.config_of design) Soc.Builder.Formal
    in
    print_endline (Rtl.Netlist.stats soc.Soc.Builder.netlist)
  in
  let doc = "Print netlist statistics for a configuration." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ design_term)

(* The 4-scenario CI slice: two expected-vulnerable and two
   expected-secure families whose formal runs are cheap. *)
let smoke_names =
  [
    "busted_timer_d3";
    "hwpe_progressive_d3";
    "no_spies_d3";
    "tdma_interconnect_d3";
  ]

let matrix_cmd =
  let run smoke names out_dir json_file jobs stat_max_n =
    let specs =
      match (smoke, names) with
      | true, [] -> List.map resolve_scenario smoke_names
      | _, [] -> Scenarios.Scenario.catalog
      | _, names -> List.map resolve_scenario names
    in
    let jobs = Upec.Cli.resolve_jobs jobs in
    let options = { Upec.Options.default with Upec.Options.jobs } in
    (match out_dir with
    | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
    | _ -> ());
    Format.printf
      "%-28s %-12s %8s | %-12s %9s %8s | %-6s %s@." "scenario" "formal"
      "seconds" "stat" "p" "d" "replay" "status";
    let progress o =
      let open Scenarios.Crosscheck in
      (match out_dir with
      | Some dir ->
          let path =
            Filename.concat dir (o.oc_spec.Scenarios.Scenario.sp_name ^ ".json")
          in
          let oc = open_out path in
          output_string oc
            (Upec.Json.to_string (Upec.Report.to_json o.oc_report));
          close_out oc
      | None -> ());
      Format.printf "%-28s %-12s %8.1f | %-12s %9.2e %8.2f | %-6s %s@."
        o.oc_spec.Scenarios.Scenario.sp_name
        (formal_verdict_string o.oc_report)
        o.oc_report.Upec.Report.total_seconds
        (Scenarios.Stat.verdict_to_string o.oc_stat.Scenarios.Stat.st_verdict)
        o.oc_stat.Scenarios.Stat.st_p o.oc_stat.Scenarios.Stat.st_d
        (match o.oc_replay with
        | Some true -> "ok"
        | Some false -> "FAIL"
        | None -> "-")
        (if o.oc_agree && o.oc_expected_ok then "ok"
         else if not o.oc_agree then "DISAGREE"
         else "UNEXPECTED")
    in
    let outcomes =
      Scenarios.Crosscheck.run_matrix ~options ?stat_max_n ~progress specs
    in
    let artifact = Scenarios.Crosscheck.matrix_to_json outcomes in
    (match json_file with
    | Some path ->
        let oc = open_out path in
        output_string oc (Upec.Json.to_string artifact);
        close_out oc
    | None -> ());
    let bad =
      List.filter
        (fun o ->
          not
            (o.Scenarios.Crosscheck.oc_agree
            && o.Scenarios.Crosscheck.oc_expected_ok))
        outcomes
    in
    Format.printf "@.%d scenarios, %d disagreement(s), %d unexpected verdict(s)@."
      (List.length outcomes)
      (List.length
         (List.filter
            (fun o -> not o.Scenarios.Crosscheck.oc_agree)
            outcomes))
      (List.length
         (List.filter
            (fun o -> not o.Scenarios.Crosscheck.oc_expected_ok)
            outcomes));
    if bad <> [] then exit 10
  in
  let smoke_arg =
    let doc =
      "Run only the 4-scenario CI slice (2 expected-vulnerable, 2 \
       expected-secure) instead of the full catalog."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let names_arg =
    let doc = "Run only the named scenarios (overrides --smoke)." in
    Arg.(value & pos_all string [] & info [] ~doc ~docv:"NAME")
  in
  let out_arg =
    let doc = "Write one schema-3 report per scenario into \\$(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"DIR")
  in
  let matrix_json_arg =
    let doc =
      "Write the matrix artefact (per-scenario verdicts, statistics and \
       agreement flags) to \\$(docv)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let stat_max_arg =
    let doc = "Cap the statistical sample escalation at \\$(docv) pairs." in
    Arg.(value & opt (some int) None & info [ "stat-max" ] ~doc ~docv:"N")
  in
  let doc =
    "Cross-check the scenario matrix: formal verdict vs statistical timing \
     evidence. Exits 10 on any disagreement or unexpected verdict."
  in
  Cmd.v (Cmd.info "matrix" ~doc)
    Term.(
      const run $ smoke_arg $ names_arg $ out_arg $ matrix_json_arg $ jobs_arg
      $ stat_max_arg)

let () =
  let doc = "UPEC-SSC: formal detection of MCU-wide timing side channels" in
  let info = Cmd.info "upec_ssc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; matrix_cmd; invariants_cmd; stats_cmd; emit_cmd ]))
