(* The proof farm: a cached, sharded, fault-tolerant verification
   service over UPEC-SSC.

   Examples:
     upec_farm serve --socket /tmp/farm.sock --cache /tmp/farm-cache \
       --workers 4 --job-retries 2
     upec_farm serve --listen 0.0.0.0:9731 --auth-token-file farm.token \
       --cache /tmp/farm-cache --workers 4
     upec_farm submit --connect farmhost:9731 --auth-token-file farm.token \
       --job '{"design":{"depth":4},"options":{"jobs":1}}'
     upec_farm serve --cache /tmp/farm-cache --batch jobs.jsonl \
       --results out.jsonl
     upec_farm status --socket /tmp/farm.sock
     upec_farm gc --socket /tmp/farm.sock --max-lemmas 50000

   The [worker] subcommand is internal: the daemon fork/execs this
   very binary with it to populate the process pool. *)

open Cmdliner
module Json = Upec.Json

let socket_arg =
  let doc = "Unix domain socket the daemon listens on." in
  Arg.(
    value
    & opt string "/tmp/upec-farm.sock"
    & info [ "socket" ] ~doc ~docv:"PATH")

let listen_arg =
  let doc =
    "Additionally listen on TCP \\$(docv) (length-framed LDJSON with an \
     HMAC handshake; requires \\$(b,--auth-token-file))."
  in
  Arg.(
    value & opt (some string) None & info [ "listen" ] ~doc ~docv:"HOST:PORT")

let auth_token_arg =
  let doc =
    "Shared-secret token file for the TCP HMAC handshake. The daemon \
     refuses unauthenticated TCP connections; clients sign the \
     challenge with the same token."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token-file" ] ~doc ~docv:"FILE")

let cache_arg =
  let doc = "Cache directory (created if missing)." in
  Arg.(
    value & opt string "upec-farm-cache" & info [ "cache" ] ~doc ~docv:"DIR")

let workers_arg =
  let doc =
    "Worker processes. Each job runs in its own process with its own \
     GC; a crash or timeout kills one worker, never the daemon. 0 runs \
     the daemon cache-only: hits are served, misses answered \
     $(i,degraded)."
  in
  Arg.(value & opt int 2 & info [ "workers" ] ~doc ~docv:"N")

let job_timeout_arg =
  let doc =
    "Per-job wall-clock limit in seconds; an expired worker is \
     SIGKILLed, the job is retried with an escalated limit up to \
     \\$(b,--job-retries) times (0 = no limit)."
  in
  Arg.(value & opt float 0.0 & info [ "job-timeout" ] ~doc ~docv:"SECS")

let job_retries_arg =
  let doc =
    "How many times a job whose worker died (crash, timeout, torn \
     reply) is requeued before it is reported $(i,poisoned)."
  in
  Arg.(value & opt int 1 & info [ "job-retries" ] ~doc ~docv:"N")

let retry_escalation_arg =
  let doc = "Multiply the per-attempt timeout by \\$(docv) on each retry." in
  Arg.(value & opt float 2.0 & info [ "retry-escalation" ] ~doc ~docv:"X")

let max_queue_arg =
  let doc =
    "Bound on the submit queue; past it, submissions are shed \
     immediately with an $(i,overloaded) reply."
  in
  Arg.(value & opt int 256 & info [ "max-queue" ] ~doc ~docv:"N")

let batch_arg =
  let doc =
    "One-shot mode: read jobs (one JSON object per line) from \\$(docv), \
     run them through the same queue/lease/pool/cache machinery without \
     binding a socket, write replies to \\$(b,--results) and exit."
  in
  Arg.(value & opt (some string) None & info [ "batch" ] ~doc ~docv:"FILE")

let results_arg =
  let doc = "Where --batch writes its JSONL replies (default stdout)." in
  Arg.(value & opt (some string) None & info [ "results" ] ~doc ~docv:"FILE")

let log_arg =
  let doc =
    "Append every request, reply and lease event line to \\$(docv) (JSONL)."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc = "Stream observability spans to \\$(docv) as JSONL." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let metrics_arg =
  let doc = "Write the final metrics registry to \\$(docv) as JSON on exit." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let obs_setup trace_file metrics_file =
  (match trace_file with
  | Some path ->
      Obs.Trace.set_sink (open_out path);
      at_exit Obs.Trace.close
  | None -> ());
  match metrics_file with
  | Some path -> at_exit (fun () -> Obs.Metrics.dump_file path)
  | None -> ()

let serve_cmd =
  let run socket listen auth_token_file cache workers job_timeout job_retries
      retry_escalation max_queue batch results log_file trace_file
      metrics_file =
    obs_setup trace_file metrics_file;
    let auth_token = Option.map Farm.Wire.load_token auth_token_file in
    let listeners =
      match listen with
      | None -> [ Farm.Wire.Unix_path socket ]
      | Some hp -> (
          match Farm.Wire.addr_of_string hp with
          | Farm.Wire.Tcp _ as tcp ->
              if auth_token = None then begin
                prerr_endline
                  "upec_farm: --listen requires --auth-token-file \
                   (unauthenticated TCP is refused by design)";
                exit 2
              end;
              [ Farm.Wire.Unix_path socket; tcp ]
          | Farm.Wire.Unix_path _ ->
              prerr_endline "upec_farm: --listen expects HOST:PORT";
              exit 2)
    in
    let log = Option.map open_out log_file in
    let worker_argv =
      [| Sys.executable_name; "worker"; "--cache"; cache |]
    in
    let server =
      Farm.Server.create ?log ~job_retries ~retry_escalation ~max_queue
        ?auth_token ~cache_dir:cache ~worker_argv ~workers ~job_timeout ()
    in
    let stop = Atomic.make false in
    List.iter
      (fun s ->
        Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
      [ Sys.sigint; Sys.sigterm ];
    (* dead workers close their pipe ends; EPIPE must not kill us *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let status =
      match batch with
      | Some file ->
          let jobs =
            let ic = open_in file in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let rec go acc =
                  match input_line ic with
                  | line ->
                      if String.trim line = "" then go acc
                      else go (Json.of_string line :: acc)
                  | exception End_of_file -> List.rev acc
                in
                go [])
          in
          let replies = Farm.Server.run_batch server ~jobs in
          let oc =
            match results with Some f -> open_out f | None -> stdout
          in
          List.iter
            (fun r ->
              output_string oc (Json.to_string_compact r);
              output_char oc '\n')
            replies;
          if results <> None then close_out oc else flush oc;
          if
            List.for_all
              (fun r -> Json.to_bool (Json.member "ok" r) = Some true)
              replies
          then 0
          else 1
      | None ->
          Farm.Server.serve server ~listeners ~should_stop:(fun () ->
              Atomic.get stop);
          0
    in
    Farm.Server.close server;
    Option.iter close_out log;
    exit status
  in
  let doc = "Run the verification daemon (or a one-shot batch)." in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ listen_arg $ auth_token_arg $ cache_arg
      $ workers_arg $ job_timeout_arg $ job_retries_arg
      $ retry_escalation_arg $ max_queue_arg $ batch_arg $ results_arg
      $ log_arg $ trace_arg $ metrics_arg)

(* One job per stdin line, one outcome per stdout line. The store is
   re-opened per job: a read-only snapshot of whatever the daemon had
   published last — workers never write it. The chaos hook lets the
   harness SIGKILL a worker between reading a job and solving it: the
   job is provably in flight, the daemon must lease-retry it. *)
let worker_cmd =
  let run cache =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let rec loop () =
      match input_line stdin with
      | exception End_of_file -> ()
      | line ->
          if Farm.Chaos.fire "kill_worker_mid_job" then
            Unix.kill (Unix.getpid ()) Sys.sigkill;
          let reply =
            match
              let j = Json.of_string line in
              let job = Farm.Job.of_json (Json.member "job" j) in
              let store = Farm.Store.load ~dir:cache () in
              Farm.Exec.run ~store job
            with
            | outcome -> Farm.Exec.outcome_to_json outcome
            | exception e ->
                Json.Obj [ ("error", Json.Str (Printexc.to_string e)) ]
          in
          print_string (Json.to_string_compact reply);
          print_newline ();
          flush stdout;
          loop ()
    in
    loop ()
  in
  let doc = "Internal: pool worker (one job per stdin line)." in
  Cmd.v (Cmd.info "worker" ~doc) Term.(const run $ cache_arg)

(* -------- client side -------- *)

let connect_arg =
  let doc =
    "Daemon address: HOST:PORT (TCP, needs \\$(b,--auth-token-file)) or a \
     socket path. Overrides \\$(b,--socket)."
  in
  Arg.(
    value & opt (some string) None & info [ "connect" ] ~doc ~docv:"ADDR")

let rpc_timeout_arg =
  let doc = "Per-attempt deadline for the request (0 = none)." in
  Arg.(value & opt float 600.0 & info [ "rpc-timeout" ] ~doc ~docv:"SECS")

let rpc_attempts_arg =
  let doc =
    "Bounded retries per request (jittered exponential backoff between \
     attempts)."
  in
  Arg.(value & opt int 3 & info [ "rpc-attempts" ] ~doc ~docv:"N")

let target socket connect token_file =
  let addr = match connect with Some a -> a | None -> socket in
  Farm.Client.target ?token_file addr

let rpc ~timeout ~attempts tgt req =
  match Farm.Client.request ~timeout ~attempts tgt req with
  | reply -> reply
  | exception Farm.Client.Unavailable msg ->
      prerr_endline ("upec_farm: daemon unavailable: " ^ msg);
      exit 3

let job_arg =
  let doc =
    "Job description: {\"id\":..., \"design\":{...}, \"options\":{...}} \
     (every member optional; '{}' is the default check)."
  in
  Arg.(value & opt string "{}" & info [ "job" ] ~doc ~docv:"JSON")

let file_arg =
  let doc = "Submit every job in \\$(docv) (one JSON object per line)." in
  Arg.(value & opt (some string) None & info [ "file" ] ~doc ~docv:"FILE")

let submit_cmd =
  let run socket connect token_file timeout attempts job file =
    let tgt = target socket connect token_file in
    let jobs =
      match file with
      | Some f ->
          let ic = open_in f in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let rec go acc =
                match input_line ic with
                | line ->
                    if String.trim line = "" then go acc
                    else go (Json.of_string line :: acc)
                | exception End_of_file -> List.rev acc
              in
              go [])
      | None -> [ Json.of_string job ]
    in
    let ok = ref true in
    List.iter
      (fun j ->
        let reply =
          rpc ~timeout ~attempts tgt
            (Json.Obj [ ("op", Json.Str "submit"); ("job", j) ])
        in
        print_string (Json.to_string_compact reply);
        print_newline ();
        if Json.to_bool (Json.member "ok" reply) <> Some true then ok := false)
      jobs;
    exit (if !ok then 0 else 1)
  in
  let doc = "Submit job(s) and print the replies (waits for verdicts)." in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const run $ socket_arg $ connect_arg $ auth_token_arg
      $ rpc_timeout_arg $ rpc_attempts_arg $ job_arg $ file_arg)

let simple_cmd name doc req =
  let run socket connect token_file timeout attempts =
    print_string
      (Json.to_string
         (rpc ~timeout ~attempts (target socket connect token_file) (req ())))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ socket_arg $ connect_arg $ auth_token_arg
      $ rpc_timeout_arg $ rpc_attempts_arg)

let status_cmd =
  simple_cmd "status" "Print daemon status (queue, workers, cache, failures)."
    (fun () -> Json.Obj [ ("op", Json.Str "status") ])

let shutdown_cmd =
  simple_cmd "shutdown" "Ask the daemon to exit." (fun () ->
      Json.Obj [ ("op", Json.Str "shutdown") ])

let gc_cmd =
  let run socket connect token_file timeout attempts max_lemmas max_reports =
    print_string
      (Json.to_string
         (rpc ~timeout ~attempts (target socket connect token_file)
            (Json.Obj
               [
                 ("op", Json.Str "gc");
                 ("max_lemmas", Json.Int max_lemmas);
                 ("max_reports", Json.Int max_reports);
               ])))
  in
  let max_lemmas_arg =
    Arg.(value & opt int 100_000 & info [ "max-lemmas" ] ~docv:"N")
  in
  let max_reports_arg =
    Arg.(value & opt int 1_000 & info [ "max-reports" ] ~docv:"N")
  in
  let doc = "Evict least-recently-used cache entries beyond the caps." in
  Cmd.v
    (Cmd.info "gc" ~doc)
    Term.(
      const run $ socket_arg $ connect_arg $ auth_token_arg
      $ rpc_timeout_arg $ rpc_attempts_arg $ max_lemmas_arg
      $ max_reports_arg)

let () =
  let doc =
    "UPEC-SSC proof farm: cached, sharded, fault-tolerant verification \
     service"
  in
  let info = Cmd.info "upec_farm" ~version:"1.1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ serve_cmd; worker_cmd; submit_cmd; status_cmd; gc_cmd; shutdown_cmd ]))
