(* Schema check for Obs.Trace JSONL dumps: every line must be one
   complete JSON object, every [begin] span must have a matching [end]
   with the same id, and no [end] may appear without its [begin].
   Deliberately dependency-free: a field scanner, not a JSON parser.

   Usage: trace_check FILE...    (exit 0 = ok, 1 = violation) *)

let field_string line key =
  (* "key":"value" — value has no escaped quotes in our schema's ev
     field, which is all we extract as a string *)
  let pat = Printf.sprintf "\"%s\":\"" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then
      let j = ref (i + plen) in
      while !j < n && line.[!j] <> '"' do
        incr j
      done;
      Some (String.sub line (i + plen) (!j - i - plen))
    else find (i + 1)
  in
  find 0

let field_int line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let j = ref (i + plen) in
      while
        !j < n && (line.[!j] = '-' || (line.[!j] >= '0' && line.[!j] <= '9'))
      do
        incr j
      done;
      int_of_string_opt (String.sub line (i + plen) (!j - i - plen))
    end
    else find (i + 1)
  in
  find 0

let check_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let open_spans = Hashtbl.create 1024 in
      let errors = ref 0 in
      let lineno = ref 0 in
      let err fmt =
        incr errors;
        Printf.eprintf "%s:%d: " path !lineno;
        Printf.kfprintf (fun oc -> output_char oc '\n') stderr fmt
      in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let n = String.length line in
           if n = 0 then err "empty line"
           else if line.[0] <> '{' || line.[n - 1] <> '}' then
             err "not a complete JSON object: %s" line
           else
             match (field_string line "ev", field_int line "id") with
             | None, _ -> err "missing \"ev\" field"
             | Some _, None -> err "missing \"id\" field"
             | Some "begin", Some id ->
                 if Hashtbl.mem open_spans id then
                   err "duplicate begin for span %d" id;
                 Hashtbl.replace open_spans id !lineno
             | Some "end", Some id ->
                 if not (Hashtbl.mem open_spans id) then
                   err "end without begin for span %d" id
                 else Hashtbl.remove open_spans id
             | Some "instant", Some _ -> ()
             | Some ev, Some _ -> err "unknown event kind %S" ev
         done
       with End_of_file -> ());
      Hashtbl.iter
        (fun id opened ->
          incr errors;
          Printf.eprintf "%s: span %d (begun at line %d) never ended\n" path
            id opened)
        open_spans;
      (!errors, !lineno))

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as files) -> files
    | _ ->
        prerr_endline "usage: trace_check FILE...";
        exit 2
  in
  let total_errors = ref 0 in
  List.iter
    (fun path ->
      let errors, lines = check_file path in
      total_errors := !total_errors + errors;
      Printf.printf "%s: %d line(s), %d error(s)\n" path lines errors)
    files;
  exit (if !total_errors > 0 then 1 else 0)
